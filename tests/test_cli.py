"""Tests for the repro-experiments CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.length == 500
        assert args.scenario == "paper-eval"


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "JPEG" in out and "Fig. 1(b)" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "LRU" in out and "22" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "Skip Events" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        assert "mobilities" in capsys.readouterr().out

    def test_fig9a_small(self, capsys):
        assert main(["fig9a", "--length", "15", "--rus", "4", "5"]) == 0
        out = capsys.readouterr().out
        assert "Local LFD (4)" in out and "Avg." in out

    def test_fig9b_small(self, capsys):
        assert main(["fig9b", "--length", "15", "--rus", "4"]) == 0
        assert "Skip" in capsys.readouterr().out

    def test_fig9c_small(self, capsys):
        assert main(["fig9c", "--length", "15", "--rus", "4"]) == 0
        assert "overhead" in capsys.readouterr().out

    def test_scenario_option(self, capsys):
        assert main(["fig9a", "--length", "12", "--rus", "4", "--scenario", "bursty"]) == 0
        assert "LFD" in capsys.readouterr().out

    def test_seed_option(self, capsys):
        assert main(["fig9a", "--length", "12", "--rus", "4", "--seed", "99"]) == 0
        capsys.readouterr()

    def test_hybrid(self, capsys):
        assert main(["hybrid"]) == 0
        assert "speed-up" in capsys.readouterr().out

    def test_export_csv(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        assert main(
            ["fig9a", "--length", "10", "--rus", "4", "--export-csv", str(path)]
        ) == 0
        capsys.readouterr()
        text = path.read_text()
        assert text.startswith("policy_label,")
        from repro.experiments.export import sweep_from_csv

        records = sweep_from_csv(text)
        assert {r.policy_label for r in records} >= {"LRU", "LFD"}

    def test_sensitivity_command(self, capsys):
        assert main(
            ["sensitivity", "--length", "15", "--seeds", "1", "2", "--rus", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Seed sensitivity" in out and "beats LFD" in out

    def test_all_command_smoke(self, capsys):
        # Regression: a local `report = run_sensitivity(...)` used to shadow
        # the experiments.report module and crash `all` with UnboundLocalError.
        assert main(
            ["all", "--length", "10", "--rus", "4", "--no-timing", "--no-ablation"]
        ) == 0
        out = capsys.readouterr().out
        assert "MAIN EVALUATION" in out and "Fig. 9a" in out

    def test_fig9a_with_jobs(self, capsys):
        assert main(
            ["fig9a", "--length", "12", "--rus", "4", "5", "--jobs", "2"]
        ) == 0
        assert "Avg." in capsys.readouterr().out

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-eval", "quick", "bursty", "round-robin"):
            assert name in out
        assert "description" in out

    def test_sweep_command(self, capsys):
        assert main(
            ["sweep", "--scenario", "quick", "--length", "15", "--rus", "4", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "Local LFD (4)" in out and "design-time cache" in out

    def test_sweep_command_parallel_panel(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        assert main(
            [
                "sweep",
                "--panel", "fig9b",
                "--scenario", "quick",
                "--length", "15",
                "--rus", "4",
                "--jobs", "2",
                "--export-csv", str(path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "skip events" in out
        assert path.read_text().startswith("policy_label,")

    def test_sweep_matches_fig9a_command(self, capsys):
        """The sweep subcommand reproduces the fig9a artifact numbers."""
        assert main(["fig9a", "--length", "15", "--rus", "4"]) == 0
        fig9a_out = capsys.readouterr().out
        assert main(
            ["sweep", "--panel", "fig9a", "--length", "15", "--rus", "4"]
        ) == 0
        sweep_out = capsys.readouterr().out
        fig9a_rows = [l for l in fig9a_out.splitlines() if l.startswith("| L")]
        sweep_rows = [l for l in sweep_out.splitlines() if l.startswith("| L")]
        assert fig9a_rows == sweep_rows


class TestProfileFlag:
    def test_run_with_profile_prints_top_functions(self, capsys):
        assert main(
            ["run", "--scenario", "quick", "--length", "10", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "top 25 functions by cumulative time" in out
        assert "cumulative" in out  # pstats header

    def test_run_with_profile_dumps_stats_file(self, capsys, tmp_path):
        import pstats

        path = tmp_path / "run.prof"
        assert main(
            ["run", "--scenario", "quick", "--length", "10",
             "--profile", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"profile stats dumped to {path}" in out
        stats = pstats.Stats(str(path))  # parses as valid pstats
        assert stats.total_calls > 0

    def test_profile_rejected_outside_run(self, capsys):
        assert main(["fig2", "--profile"]) == 2
        assert "--profile" in capsys.readouterr().err


class TestTraceOutStdout:
    def test_trace_out_dash_streams_jsonl_to_stdout(self, capsys):
        import json as json_mod

        assert main(
            ["run", "--scenario", "quick", "--length", "10", "--trace-out", "-"]
        ) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l]
        assert json_mod.loads(lines[0])["event"] == "RunStart"
        assert json_mod.loads(lines[-1])["event"] == "RunEnd"
        # The human-readable summary moved to stderr to keep stdout pure.
        assert "makespan_us" in captured.err
        assert "streamed to stdout" in captured.err


class TestCacheJson:
    def test_cache_stats_json(self, capsys, tmp_path):
        import json as json_mod

        assert main(["cache", "stats", "--json", "--store", str(tmp_path)]) == 0
        info = json_mod.loads(capsys.readouterr().out)
        assert info["root"] == str(tmp_path)
        assert info["total_entries"] == 0
        assert set(info["entries"]) >= {"compiled", "ideal", "mobility"}

    def test_cache_stats_json_counts_entries(self, capsys, tmp_path):
        import json as json_mod

        assert main(
            ["cache", "warm", "--scenario", "quick", "--length", "10",
             "--rus", "4", "--store", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--store", str(tmp_path)]) == 0
        info = json_mod.loads(capsys.readouterr().out)
        assert info["total_entries"] > 0


class TestServiceCommands:
    @pytest.fixture(scope="class")
    def daemon(self):
        from repro.server import ServerThread

        with ServerThread(workers=2, quota_rate=0) as srv:
            yield srv

    def _argv(self, daemon, *rest):
        return [*rest, "--host", daemon.host, "--port", str(daemon.port)]

    def test_submit_run_and_jobs_listing(self, capsys, daemon):
        argv = self._argv(
            daemon, "submit", "--scenario", "quick", "--length", "20",
            "--policy", "local-lfd", "--window", "2",
        )
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "submitted j" in captured.err
        assert "Local LFD (2)" in captured.out
        assert "makespan_us" in captured.out

        assert main(self._argv(daemon, "jobs")) == 0
        assert "done" in capsys.readouterr().out

    def test_submit_sweep_json(self, capsys, daemon):
        import json as json_mod

        argv = self._argv(
            daemon, "submit", "--sweep", "--scenario", "quick", "--length",
            "20", "--policies", "local-lfd", "lru", "--rus", "4", "6",
            "--json",
        )
        assert main(argv) == 0
        result = json_mod.loads(capsys.readouterr().out)
        assert result["kind"] == "sweep"
        assert len(result["records"]) == 4

    def test_submit_stream_writes_jsonl_to_stdout(self, capsys, daemon):
        import json as json_mod

        argv = self._argv(
            daemon, "submit", "--scenario", "quick", "--length", "20",
            "--stream",
        )
        assert main(argv) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.out.splitlines() if l]
        assert json_mod.loads(lines[0])["event"] == "RunStart"
        assert json_mod.loads(lines[-1])["event"] == "RunEnd"

    def test_submit_no_wait_then_inspect_and_cancel(self, capsys, daemon):
        argv = self._argv(
            daemon, "submit", "--scenario", "quick", "--length", "20",
            "--no-wait",
        )
        assert main(argv) == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id.startswith("j")

        assert main(self._argv(daemon, "jobs", job_id)) == 0
        assert job_id in capsys.readouterr().out

        assert main(self._argv(daemon, "jobs", job_id, "--cancel")) == 0
        assert "cancel_requested" in capsys.readouterr().out

    def test_jobs_unknown_id_fails(self, capsys, daemon):
        assert main(self._argv(daemon, "jobs", "j-unknown")) == 1
        assert "404" in capsys.readouterr().err

    def test_service_flags_rejected_elsewhere(self, capsys):
        assert main(["fig2", "--workers", "3"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["run", "--stream"]) == 2
        assert "--stream" in capsys.readouterr().err
        assert main(["fig2", "--json"]) == 2
        assert "--json" in capsys.readouterr().err
