"""Unit tests for the replacement policies (no simulator needed)."""

import math

import pytest

from repro.core.policies.base import argbest, forward_distance
from repro.core.policies.classic import FIFOPolicy, LRUPolicy, MRUPolicy, RandomPolicy
from repro.core.policies.lfd import LFDPolicy, LocalLFDPolicy, local_lfd_name
from repro.core.policies.registry import available_policies, make_policy, register_policy
from repro.exceptions import PolicyError
from repro.graphs.task import ConfigId, TaskInstance
from repro.sim.interface import DecisionContext
from repro.sim.ru import RUState, RUView


def view(index, name="G", node=0, last_use=0, load_end=0):
    return RUView(
        index=index,
        config=ConfigId(name, node),
        state=RUState.LOADED,
        last_use=last_use,
        load_end=load_end,
    )


def ctx(candidates, future=(), oracle=None):
    return DecisionContext(
        now=0,
        incoming=TaskInstance(app_index=0, config=ConfigId("X", 99), exec_time=1),
        candidates=tuple(candidates),
        future_refs=tuple(future),
        oracle_refs=tuple(oracle) if oracle is not None else None,
        dl_configs=frozenset(future),
        busy_configs=frozenset(),
        mobility=0,
        skipped_events=0,
    )


class TestForwardDistance:
    def test_first_occurrence(self):
        refs = [ConfigId("A", 1), ConfigId("A", 2), ConfigId("A", 1)]
        assert forward_distance(ConfigId("A", 1), refs) == 0.0
        assert forward_distance(ConfigId("A", 2), refs) == 1.0

    def test_missing_is_infinite(self):
        assert forward_distance(ConfigId("A", 9), []) == math.inf

    def test_none_is_infinite(self):
        assert forward_distance(None, [ConfigId("A", 1)]) == math.inf


class TestArgbest:
    def test_ties_break_to_lowest_index(self):
        candidates = (view(0, last_use=5), view(1, last_use=5), view(2, last_use=5))
        assert argbest(candidates, key=lambda v: v.last_use, prefer_max=False).index == 0
        assert argbest(candidates, key=lambda v: v.last_use, prefer_max=True).index == 0

    def test_empty_raises(self):
        with pytest.raises(PolicyError):
            argbest((), key=lambda v: 0, prefer_max=True)


class TestLRU:
    def test_picks_oldest_use(self):
        candidates = (view(0, last_use=30), view(1, last_use=10), view(2, last_use=20))
        assert LRUPolicy().select_victim(ctx(candidates)) == 1

    def test_tie_breaks_to_lowest_ru(self):
        candidates = (view(0, last_use=10), view(1, last_use=10))
        assert LRUPolicy().select_victim(ctx(candidates)) == 0


class TestMRUAndFIFO:
    def test_mru_picks_newest_use(self):
        candidates = (view(0, last_use=30), view(1, last_use=10))
        assert MRUPolicy().select_victim(ctx(candidates)) == 0

    def test_fifo_picks_oldest_load(self):
        candidates = (view(0, load_end=50, last_use=1), view(1, load_end=5, last_use=99))
        assert FIFOPolicy().select_victim(ctx(candidates)) == 1


class TestRandom:
    def test_deterministic_given_seed(self):
        candidates = tuple(view(i, node=i) for i in range(4))
        a = RandomPolicy(seed=3)
        b = RandomPolicy(seed=3)
        picks_a = [a.select_victim(ctx(candidates)) for _ in range(20)]
        picks_b = [b.select_victim(ctx(candidates)) for _ in range(20)]
        assert picks_a == picks_b

    def test_reset_restarts_stream(self):
        candidates = tuple(view(i, node=i) for i in range(4))
        p = RandomPolicy(seed=3)
        first = [p.select_victim(ctx(candidates)) for _ in range(10)]
        p.reset()
        second = [p.select_victim(ctx(candidates)) for _ in range(10)]
        assert first == second

    def test_victim_always_a_candidate(self):
        candidates = tuple(view(i, node=i) for i in range(3))
        p = RandomPolicy(seed=0)
        for _ in range(50):
            assert p.select_victim(ctx(candidates)) in (0, 1, 2)


class TestLFD:
    def test_needs_oracle(self):
        with pytest.raises(PolicyError, match="oracle"):
            LFDPolicy().select_victim(ctx((view(0),)))

    def test_picks_farthest_future_use(self):
        a, b, c = ConfigId("G", 0), ConfigId("G", 1), ConfigId("G", 2)
        candidates = (view(0, node=0), view(1, node=1), view(2, node=2))
        # next uses: a at 0, b at 2, c at 1 -> evict b.
        assert LFDPolicy().select_victim(ctx(candidates, oracle=[a, c, b])) == 1

    def test_never_used_again_preferred(self):
        a, b = ConfigId("G", 0), ConfigId("G", 1)
        candidates = (view(0, node=0), view(1, node=1))
        assert LFDPolicy().select_victim(ctx(candidates, oracle=[a])) == 1

    def test_all_unused_ties_to_first_ru(self):
        candidates = (view(0, node=0), view(1, node=1))
        assert LFDPolicy().select_victim(ctx(candidates, oracle=[])) == 0


class TestLocalLFD:
    def test_uses_window_not_oracle(self):
        a, b = ConfigId("G", 0), ConfigId("G", 1)
        candidates = (view(0, node=0), view(1, node=1))
        # Window says b is used sooner; oracle (ignored) says the opposite.
        choice = LocalLFDPolicy().select_victim(
            ctx(candidates, future=[b, a], oracle=[a, b])
        )
        assert choice == 0  # a is farther inside the window

    def test_paper_tie_behaviour(self):
        # Fig. 2c: all candidates outside DL -> "first candidate it finds".
        candidates = (view(0, node=0), view(1, node=1), view(2, node=2))
        assert LocalLFDPolicy().select_victim(ctx(candidates, future=[])) == 0

    def test_name_helper(self):
        assert local_lfd_name(2) == "Local LFD (2)"
        assert local_lfd_name(4, skip_events=True) == "Local LFD (4) + Skip"


class TestRegistry:
    def test_all_registered(self):
        assert {"lru", "mru", "fifo", "random", "lfd", "local-lfd"} <= set(
            available_policies()
        )

    def test_make_policy_case_insensitive(self):
        assert make_policy("LRU").name == "LRU"
        assert make_policy("local-LFD").name == "LocalLFD"

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyError):
            make_policy("belady9000")

    def test_register_custom_and_duplicate(self):
        class Custom(LRUPolicy):
            name = "custom-test"

        register_policy("custom-test-policy", Custom)
        assert make_policy("custom-test-policy").name == "custom-test"
        with pytest.raises(PolicyError):
            register_policy("custom-test-policy", Custom)
