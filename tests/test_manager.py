"""Tests for the execution manager (hand-computed schedules)."""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.policies.lfd import LocalLFDPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.exceptions import PolicyError, SimulationError
from repro.graphs.builders import TaskGraphBuilder, chain_graph, fork_graph
from repro.sim.interface import Decision, ReplacementAdvisor
from repro.sim.manager import ExecutionManager
from repro.sim.semantics import CrossAppPrefetch, ManagerSemantics
from repro.sim.simtime import ms
from repro.sim.validation import validate_trace


def run(graphs, n_rus=4, latency=ms(4), advisor=None, semantics=None, **kwargs):
    manager = ExecutionManager(
        graphs=graphs,
        n_rus=n_rus,
        reconfig_latency=latency,
        advisor=advisor or PolicyAdvisor(LRUPolicy()),
        semantics=semantics or ManagerSemantics(),
        **kwargs,
    )
    trace = manager.run()
    validate_trace(trace, graphs)
    return trace


class TestSingleAppScheduling:
    def test_single_task(self):
        g = chain_graph("G", [ms(10)])
        trace = run([g], n_rus=1)
        assert trace.makespan == ms(14)          # 4 load + 10 exec
        assert trace.n_reconfigurations == 1
        assert trace.n_reused_executions == 0

    def test_chain_prefetch_hides_latencies(self):
        # 1(10) -> 2(10) -> 3(10): loads pipeline behind executions.
        g = chain_graph("G", [ms(10), ms(10), ms(10)])
        trace = run([g])
        # rec1 0-4, t1 4-14; rec2 4-8 (hidden); t2 14-24; rec3 8-12; t3 24-34.
        assert trace.makespan == ms(34)
        execs = {e.config.node_id: e for e in trace.executions}
        assert execs[1].start == ms(4)
        assert execs[2].start == ms(14)
        assert execs[3].start == ms(24)

    def test_fork_loads_serialize_on_single_circuitry(self):
        # 1(10) -> {2, 3}: recs at 0-4, 4-8, 8-12; all hidden except first.
        g = fork_graph("G", ms(10), [ms(5), ms(5)])
        trace = run([g])
        recs = sorted(trace.reconfigs, key=lambda r: r.start)
        assert [(r.start, r.end) for r in recs] == [
            (0, ms(4)),
            (ms(4), ms(8)),
            (ms(8), ms(12)),
        ]
        execs = {e.config.node_id: e for e in trace.executions}
        assert execs[2].start == ms(14)  # dep on 1 (ends 14); rec done 8
        assert execs[3].start == ms(14)

    def test_exposed_latency_delays_execution(self):
        # 1(2) -> 2(2): rec2 ends at 8, after t1 ends at 6 -> 2ms exposed.
        g = chain_graph("G", [ms(2), ms(2)])
        trace = run([g])
        execs = {e.config.node_id: e for e in trace.executions}
        assert execs[2].start == ms(8)
        assert trace.makespan == ms(10)

    def test_more_tasks_than_rus_replaces_within_app(self):
        g = chain_graph("G", [ms(10)] * 5)
        trace = run([g], n_rus=2)
        assert trace.n_reconfigurations == 5
        assert len(trace.evictions) == 3  # tasks 3,4,5 evict finished ones
        assert trace.n_executions == 5


class TestReuseAcrossApps:
    def test_identical_apps_reuse_everything_second_time(self):
        g = chain_graph("G", [ms(10), ms(10)])
        trace = run([g, g], n_rus=4)
        assert trace.n_reconfigurations == 2
        assert trace.n_reused_executions == 2
        assert trace.reuse_rate() == pytest.approx(0.5)

    def test_reused_app_has_no_reconfig_overhead(self):
        g = chain_graph("G", [ms(10), ms(10)])
        trace = run([g, g], n_rus=4)
        # app 0: rec 0-4, t1 4-14, t2 14-24 (rec2 hidden 4-8).
        # app 1: reuse both; t1 24-34, t2 34-44.
        assert trace.makespan == ms(44)
        assert trace.app_completion_times == {0: ms(24), 1: ms(44)}

    def test_different_apps_never_share_configs(self):
        a = chain_graph("A", [ms(5)])
        b = chain_graph("B", [ms(5)])
        trace = run([a, b], n_rus=4)
        assert trace.n_reused_executions == 0
        assert trace.n_reconfigurations == 2

    def test_renamed_graph_breaks_reuse(self):
        a = chain_graph("A", [ms(5), ms(5)])
        trace = run([a, a.renamed("B")], n_rus=4)
        assert trace.n_reused_executions == 0


class TestBarrierSemantics:
    def test_next_app_waits_for_completion(self):
        slow = chain_graph("SLOW", [ms(50)])
        fast = chain_graph("FAST", [ms(1)])
        trace = run([slow, fast], n_rus=4)
        slow_end = trace.executions_of_app(0)[0].end
        fast_start = trace.executions_of_app(1)[0].start
        assert fast_start >= slow_end

    def test_isolated_semantics_block_future_loads(self):
        a = chain_graph("A", [ms(50)])
        b = chain_graph("B", [ms(1)])
        trace = run(
            [a, b],
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.ISOLATED, lookahead_apps=4
            ),
        )
        rec_b = next(r for r in trace.reconfigs if r.config.graph_name == "B")
        assert rec_b.start >= ms(54)  # only after A completes

    def test_free_ru_prefetch_loads_future_app_early(self):
        a = chain_graph("A", [ms(50)])
        b = chain_graph("B", [ms(1)])
        trace = run(
            [a, b],
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FREE_RU_ONLY, lookahead_apps=1
            ),
        )
        rec_b = next(r for r in trace.reconfigs if r.config.graph_name == "B")
        assert rec_b.start == ms(4)  # right after A's only load

    def test_lookahead_zero_blocks_future_dispatch_entirely(self):
        a = chain_graph("A", [ms(50)])
        b = chain_graph("B", [ms(1)])
        trace = run(
            [a, b],
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FULL, lookahead_apps=0
            ),
        )
        rec_b = next(r for r in trace.reconfigs if r.config.graph_name == "B")
        assert rec_b.start >= ms(54)


class TestForcedDelays:
    def test_delay_shifts_load_to_next_event(self):
        # 1(10) -> 2(10): delaying 2 by one event moves rec2 from t=4
        # (end_rec1) to t=14 (end_exec1).
        g = chain_graph("G", [ms(10), ms(10)])
        trace = run([g], forced_delays={(0, 2): 1})
        rec2 = next(r for r in trace.reconfigs if r.config.node_id == 2)
        assert rec2.start == ms(14)

    def test_zero_budget_is_noop(self):
        g = chain_graph("G", [ms(10), ms(10)])
        base = run([g])
        delayed = run([g], forced_delays={(0, 2): 0})
        assert delayed.makespan == base.makespan

    def test_infeasible_delay_raises(self):
        g = chain_graph("G", [ms(10)])
        with pytest.raises(SimulationError):
            run([g], forced_delays={(0, 1): 99})


class TestValidation:
    def test_empty_sequence_rejected(self):
        with pytest.raises(SimulationError):
            run([])

    def test_zero_rus_rejected(self):
        with pytest.raises(SimulationError):
            run([chain_graph("G", [ms(1)])], n_rus=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            run([chain_graph("G", [ms(1)])], latency=-1)

    def test_too_wide_app_rejected(self):
        wide = fork_graph("W", ms(1), [ms(10)] * 6)  # 6 concurrent branches
        with pytest.raises(SimulationError, match="concurrent RUs"):
            run([wide], n_rus=4)

    def test_bad_policy_victim_rejected(self):
        class BadAdvisor(ReplacementAdvisor):
            def decide(self, ctx):
                return Decision.load(victim_index=999)

        g = chain_graph("G", [ms(5)] * 3)
        with pytest.raises(PolicyError):
            run([g], n_rus=2, advisor=BadAdvisor())

    def test_arrival_times_length_mismatch(self):
        g = chain_graph("G", [ms(1)])
        with pytest.raises(SimulationError):
            run([g], arrival_times=[0, 0])


class TestArrivalTimes:
    def test_late_arrival_delays_app(self):
        a = chain_graph("A", [ms(5)])
        b = chain_graph("B", [ms(5)])
        trace = run([a, b], arrival_times=[0, ms(100)])
        start_b = trace.executions_of_app(1)[0].start
        assert start_b >= ms(104)  # arrival + load

    def test_zero_latency_run(self):
        g = chain_graph("G", [ms(10), ms(10)])
        trace = run([g], latency=0)
        assert trace.makespan == ms(20)  # equals the critical path
