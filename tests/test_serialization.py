"""Tests for task-graph JSON serialization."""

import pytest

from repro.exceptions import GraphError
from repro.graphs.builders import fork_join_graph
from repro.graphs.multimedia import benchmark_suite
from repro.graphs.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    load_graphs,
    save_graphs,
)


class TestRoundTrip:
    def test_dict_round_trip(self):
        g = fork_join_graph("FJ", 10, [20, 30], 5)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_json_round_trip(self):
        g = fork_join_graph("FJ", 10, [20, 30], 5)
        assert graph_from_json(graph_to_json(g)) == g

    def test_benchmarks_round_trip(self):
        for g in benchmark_suite():
            assert graph_from_json(graph_to_json(g)) == g

    def test_bitstream_and_names_preserved(self):
        g = fork_join_graph("FJ", 10, [20], 5)
        data = graph_to_dict(g)
        data["tasks"][0]["bitstream_kb"] = 128
        data["tasks"][0]["name"] = "special"
        h = graph_from_dict(data)
        assert h.task(1).bitstream_kb == 128
        assert h.task(1).name == "special"

    def test_file_round_trip(self, tmp_path):
        graphs = benchmark_suite()
        path = str(tmp_path / "suite.json")
        save_graphs(graphs, path)
        loaded = load_graphs(path)
        assert loaded == graphs


class TestErrors:
    def test_bad_version(self):
        with pytest.raises(GraphError, match="version"):
            graph_from_dict({"version": 99, "name": "X", "tasks": []})

    def test_missing_fields(self):
        with pytest.raises(GraphError):
            graph_from_dict({"version": 1})

    def test_invalid_task_record(self):
        with pytest.raises(GraphError):
            graph_from_dict({"name": "X", "tasks": [{"id": 1}]})

    def test_invalid_edge_record(self):
        with pytest.raises(GraphError):
            graph_from_dict(
                {"name": "X", "tasks": [{"id": 1, "exec_time": 5}], "edges": [[1]]}
            )

    def test_invalid_json_text(self):
        with pytest.raises(GraphError):
            graph_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(GraphError):
            graph_from_json("[1, 2, 3]")

    def test_non_list_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a": 1}')
        with pytest.raises(GraphError):
            load_graphs(str(path))
