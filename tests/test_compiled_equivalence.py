"""The compiled fast path is byte-identical to the straightforward engine.

Three layers of pinning, per the repo's equivalence convention
(DESIGN.md, docs/performance.md):

1. **Decision-context equivalence** — on every replacement decision, the
   incrementally-maintained Dynamic-List window, the lazy oracle view,
   the window membership set, the busy set and the scratch candidate
   snapshots are compared against a literal re-derivation from manager
   state (a reimplementation of the pre-compiled-engine ``_future_refs``
   full rescan), across every registered scenario.
2. **Event-stream equivalence** — for every scenario × every registry
   policy, a run whose compiled workload went through the artifact-store
   JSON codec emits exactly the same event stream as a run that compiled
   on the fly; and the scalar sink fast path (single built-in sink)
   produces byte-identical traces/summaries to the object path (any
   extra sink attached).
3. **JSONL byte-identity** — the streamed event log of a compiled-path
   run is byte-for-byte the file the fresh-compile run writes, and it
   round-trips losslessly through ``trace_from_jsonl``.
"""

import json

import pytest

from repro.artifacts import compiled_key, decode_compiled, encode_compiled
from repro.core.policies.registry import available_policies, make_policy
from repro.core.replacement_module import PolicyAdvisor
from repro.sim.manager import ExecutionManager
from repro.sim.semantics import ManagerSemantics
from repro.sim.tracing import TraceSink, trace_from_jsonl
from repro.workloads.compiled import CompiledWorkload
from repro.workloads.scenarios import (
    available_scenarios,
    make_scenario,
    scenario_info,
)

SMALL = {"length": 16}


def _small_workload(name):
    info = scenario_info(name)
    kwargs = {k: v for k, v in SMALL.items() if k in info.parameters}
    return make_scenario(name, **kwargs)


def _hardware(workload):
    if workload.device is not None:
        return {"device": workload.device}
    return {"n_rus": workload.n_rus, "reconfig_latency": workload.reconfig_latency}


class RecordingSink(TraceSink):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


# ----------------------------------------------------------------------
# 1. Decision-context equivalence vs the literal rescan
# ----------------------------------------------------------------------
def _reference_future_refs(mgr, lookahead):
    """Reimplementation of the pre-compiled engine's ``_future_refs``:
    walk the remaining reference string from the dispatch pointer,
    window-limited (with arrival gating) unless ``lookahead`` is None."""
    refs = []
    app_idx = mgr._dispatch_app
    pos = mgr._dispatch_pos + 1  # skip the head itself
    limit = (
        len(mgr.apps)
        if lookahead is None
        else min(len(mgr.apps), mgr._current_app + lookahead + 1)
    )
    while app_idx < limit:
        app = mgr.apps[app_idx]
        if lookahead is not None and app.arrival_time > mgr.clock:
            break
        configs = app.capp.rec_configs
        while pos < len(configs):
            refs.append(configs[pos])
            pos += 1
        app_idx += 1
        pos = 0
    return tuple(refs)


def _reference_candidates(mgr, kb):
    from repro.sim.ru import RUState

    out = []
    for ru in mgr.rus:
        if ru.state is RUState.LOADED and ru.pending is None and (
            mgr._uniform_slots or ru.fits(kb)
        ):
            out.append((ru.index, ru.config, ru.last_use, ru.load_end))
    return out


def _reference_busy(mgr):
    from repro.sim.ru import RUState

    return frozenset(
        ru.config
        for ru in mgr.rus
        if ru.config is not None
        and ru.state in (RUState.EXECUTING, RUState.RECONFIGURING)
    )


class AssertingAdvisor(PolicyAdvisor):
    """PolicyAdvisor that cross-checks every context against the rescan."""

    manager = None  # attached after construction
    decisions = 0

    def decide(self, ctx):
        mgr = self.manager
        lookahead = mgr.semantics.lookahead_apps

        window = _reference_future_refs(mgr, lookahead)
        assert tuple(ctx.future_refs) == window
        assert len(ctx.future_refs) == len(window)
        assert frozenset(iter(ctx.dl_configs)) == frozenset(window)
        for config in mgr.compiled.config_ids:
            assert (config in ctx.dl_configs) == (config in frozenset(window))

        if mgr.semantics.provide_oracle:
            assert tuple(ctx.oracle_refs) == _reference_future_refs(mgr, None)
        else:
            assert ctx.oracle_refs is None

        assert frozenset(ctx.busy_configs) == _reference_busy(mgr)

        head_capp = mgr.apps[mgr._dispatch_app].capp
        kb = head_capp.rec_bitstreams[mgr._dispatch_pos]
        assert [
            (v.index, v.config, v.last_use, v.load_end) for v in ctx.candidates
        ] == _reference_candidates(mgr, kb)

        table = mgr.mobility_tables.get(ctx.incoming.graph_name, {})
        assert ctx.mobility == int(table.get(ctx.incoming.node_id, 0))
        assert ctx.skipped_events == mgr.skipped_events[ctx.incoming.app_index]
        assert ctx.now == mgr.clock

        type(self).decisions += 1
        return super().decide(ctx)


@pytest.mark.parametrize("scenario_name", available_scenarios())
@pytest.mark.parametrize(
    "policy_name,window,oracle", [("lru", 1, False), ("local-lfd", 2, False), ("lfd", 1, True)]
)
def test_incremental_window_matches_literal_rescan(
    scenario_name, policy_name, window, oracle
):
    workload = _small_workload(scenario_name)
    skip = policy_name == "local-lfd"
    mobility = None
    if skip:
        from repro.core.mobility import MobilityCalculator

        mobility = MobilityCalculator(
            workload.n_rus, workload.reconfig_latency
        ).compute_tables(workload.distinct_graphs())
    AssertingAdvisor.decisions = 0
    advisor = AssertingAdvisor(make_policy(policy_name), skip_events=skip)
    manager = ExecutionManager(
        graphs=workload.apps,
        advisor=advisor,
        semantics=ManagerSemantics(lookahead_apps=window, provide_oracle=oracle),
        mobility_tables=mobility,
        trace="aggregate",
        **_hardware(workload),
    )
    advisor.manager = manager
    trace = manager.run()
    assert trace.n_executions == workload.n_tasks
    assert AssertingAdvisor.decisions > 0  # the cross-check actually ran


def test_incremental_window_matches_under_staggered_arrivals():
    """Arrival gating: the window end must track the clock exactly."""
    workload = _small_workload("quick")
    arrivals = [i * 30_000 for i in range(len(workload.apps))]
    AssertingAdvisor.decisions = 0
    advisor = AssertingAdvisor(make_policy("lru"))
    manager = ExecutionManager(
        graphs=workload.apps,
        n_rus=workload.n_rus,
        reconfig_latency=workload.reconfig_latency,
        advisor=advisor,
        semantics=ManagerSemantics(lookahead_apps=3),
        arrival_times=arrivals,
        trace="aggregate",
    )
    advisor.manager = manager
    manager.run()
    assert AssertingAdvisor.decisions > 0


# ----------------------------------------------------------------------
# 2. Event-stream equivalence: store-round-tripped compiled vs fresh
# ----------------------------------------------------------------------
def _events(workload, policy_name, compiled):
    skip = policy_name == "local-lfd"
    mobility = None
    if skip:
        from repro.core.mobility import MobilityCalculator

        mobility = MobilityCalculator(
            workload.n_rus, workload.reconfig_latency
        ).compute_tables(workload.distinct_graphs())
    sink = RecordingSink()
    ExecutionManager(
        graphs=workload.apps,
        advisor=PolicyAdvisor(make_policy(policy_name), skip_events=skip),
        semantics=ManagerSemantics(
            lookahead_apps=1, provide_oracle=(policy_name == "lfd")
        ),
        mobility_tables=mobility,
        trace="aggregate",
        extra_sinks=(sink,),
        compiled=compiled,
        **_hardware(workload),
    ).run()
    return sink.events


def _store_round_trip(compiled):
    key = compiled_key("test")
    entry = json.loads(json.dumps(encode_compiled(key, compiled)))
    return decode_compiled(key, entry)


@pytest.mark.parametrize("scenario_name", available_scenarios())
@pytest.mark.parametrize("policy_name", available_policies())
def test_precompiled_stream_identical_to_fresh(scenario_name, policy_name):
    workload = _small_workload(scenario_name)
    compiled = _store_round_trip(CompiledWorkload.compile(workload.apps))
    fresh = _events(workload, policy_name, compiled=None)
    precompiled = _events(workload, policy_name, compiled=compiled)
    assert fresh == precompiled


@pytest.mark.parametrize("trace_mode", ["full", "aggregate"])
@pytest.mark.parametrize(
    "scenario_name", ["quick", "multi-controller", "big-little", "sized-bitstreams"]
)
def test_scalar_fast_path_matches_object_path(scenario_name, trace_mode):
    """Single built-in sink (scalar hooks) vs extra-sink (object) runs."""
    workload = _small_workload(scenario_name)

    def run(extra):
        return ExecutionManager(
            graphs=workload.apps,
            advisor=PolicyAdvisor(make_policy("local-lfd")),
            semantics=ManagerSemantics(lookahead_apps=1),
            trace=trace_mode,
            extra_sinks=extra,
            **_hardware(workload),
        ).run()

    scalar = run(())
    object_path = run((RecordingSink(),))
    assert json.dumps(scalar.summary()) == json.dumps(object_path.summary())
    if trace_mode == "full":
        assert scalar.executions == object_path.executions
        assert scalar.reconfigs == object_path.reconfigs
        assert scalar.reuses == object_path.reuses
        assert scalar.evictions == object_path.evictions
        assert scalar.skips == object_path.skips
        assert scalar.app_completion_times == object_path.app_completion_times
        assert scalar.no_reuse_baseline_us == object_path.no_reuse_baseline_us


# ----------------------------------------------------------------------
# 3. JSONL byte-identity and lossless round-trip
# ----------------------------------------------------------------------
def test_jsonl_stream_byte_identical_and_lossless(tmp_path):
    workload = _small_workload("quick")
    compiled = _store_round_trip(CompiledWorkload.compile(workload.apps))

    def run(path, co):
        ExecutionManager(
            graphs=workload.apps,
            n_rus=workload.n_rus,
            reconfig_latency=workload.reconfig_latency,
            advisor=PolicyAdvisor(make_policy("local-lfd")),
            semantics=ManagerSemantics(lookahead_apps=1),
            trace=path,
            compiled=co,
        ).run()

    fresh_path = tmp_path / "fresh.jsonl"
    precompiled_path = tmp_path / "precompiled.jsonl"
    run(fresh_path, None)
    run(precompiled_path, compiled)
    assert fresh_path.read_bytes() == precompiled_path.read_bytes()

    # Lossless: replaying the stream rebuilds the exact full trace.
    full = ExecutionManager(
        graphs=workload.apps,
        n_rus=workload.n_rus,
        reconfig_latency=workload.reconfig_latency,
        advisor=PolicyAdvisor(make_policy("local-lfd")),
        semantics=ManagerSemantics(lookahead_apps=1),
        trace="full",
        compiled=compiled,
    ).run()
    replayed = trace_from_jsonl(precompiled_path)
    assert replayed.executions == full.executions
    assert replayed.reconfigs == full.reconfigs
    assert json.dumps(replayed.summary()) == json.dumps(full.summary())
