"""Tests for the declarative experiment API (Device/PolicySpec/Session).

Covers the PR-1 acceptance criteria: sweep results equal the seed-style
sequential ``simulate()`` loop cell-for-cell, ``parallel=2`` equals
``parallel=1``, design-time artifact cache hits are observable, and the
``simulate()`` deprecation shim keeps working.
"""

import os

import pytest

from repro.core.device import Device, PAPER_DEVICE
from repro.core.mobility import MobilityCalculator
from repro.core.policy_spec import (
    PolicySpec,
    fig9a_specs,
    fig9b_specs,
    lfd_spec,
    local_lfd_spec,
    lru_spec,
)
from repro.core.policies.classic import LRUPolicy
from repro.core.policies.extended import LRUKPolicy
from repro.exceptions import DeviceError, ExperimentError, WorkloadError
from repro.metrics.summary import PolicyRunRecord
from repro.session import (
    ArtifactCache,
    Session,
    SessionHooks,
    SweepCell,
    workload_content_key,
)
from repro.sim.simulator import ideal_makespan, run_simulation, simulate
from repro.workloads.scenarios import (
    make_scenario,
    paper_evaluation_workload,
    quick_workload,
    scenario_info,
)

RU_SUBSET = (4, 6)


@pytest.fixture(scope="module")
def workload():
    return quick_workload(length=25)


@pytest.fixture(scope="module")
def session(workload):
    return Session(Device(4), workload)


class TestDevice:
    def test_validation(self):
        with pytest.raises(DeviceError):
            Device(0)
        with pytest.raises(DeviceError):
            Device(4, reconfig_latency=-1)

    def test_with_rus_and_sweep(self):
        assert Device(4).with_rus(8).n_rus == 8
        assert [d.n_rus for d in Device(4).sweep((4, 6))] == [4, 6]
        assert Device(4).with_latency(9).reconfig_latency == 9

    def test_from_workload(self, workload):
        device = Device.from_workload(workload)
        assert device.n_rus == workload.n_rus
        assert device.reconfig_latency == workload.reconfig_latency

    def test_paper_device(self):
        assert PAPER_DEVICE.n_rus == 4
        assert PAPER_DEVICE.reconfig_latency == 4000
        assert "paper" in PAPER_DEVICE.label


class TestPolicySpec:
    def test_policy_kwargs(self):
        spec = PolicySpec("LRU-2", LRUKPolicy, policy_kwargs=(("k", 2),))
        policy = spec.make_policy()
        assert isinstance(policy, LRUKPolicy)

    def test_make_semantics(self):
        spec = local_lfd_spec(3)
        sem = spec.make_semantics()
        assert sem.lookahead_apps == 3 and not sem.provide_oracle
        assert lfd_spec().make_semantics().provide_oracle

    def test_with_label(self):
        assert lru_spec().with_label("renamed").label == "renamed"

    def test_specs_are_picklable(self):
        import pickle

        for spec in fig9a_specs() + fig9b_specs():
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestSessionRun:
    def test_run_matches_seed_style_simulate(self, workload):
        """Session.run == the seed code's hand-wired simulate() call."""
        session = Session(Device(4), workload)
        spec = local_lfd_spec(1, skip_events=True)

        mobility = MobilityCalculator(
            n_rus=4, reconfig_latency=workload.reconfig_latency
        ).compute_tables(workload.distinct_graphs())
        expected = run_simulation(
            list(workload.apps),
            n_rus=4,
            reconfig_latency=workload.reconfig_latency,
            advisor=spec.make_advisor(),
            semantics=spec.make_semantics(),
            mobility_tables=mobility,
        )
        got = session.run(spec)
        assert got.makespan_us == expected.makespan_us
        assert got.reuse_pct == expected.reuse_pct
        assert got.trace.n_skips == expected.trace.n_skips

    def test_scenario_name_workload(self):
        session = Session(Device(4), "quick", length=10)
        assert session.workload.n_apps == 10

    def test_scenario_kwargs_rejected_for_workload_object(self, workload):
        with pytest.raises(ExperimentError):
            Session(Device(4), workload, length=10)

    def test_requires_workload(self):
        with pytest.raises(ExperimentError):
            Session(Device(4))

    def test_device_defaults_from_workload(self, workload):
        assert Session(workload=workload).device.n_rus == workload.n_rus


class TestSweep:
    def test_sweep_equals_sequential_simulate_cell_for_cell(self, workload):
        """Acceptance: the engine reproduces the seed sweep loop exactly."""
        specs = fig9b_specs()
        sweep = Session(workload=workload).sweep(specs, ru_counts=RU_SUBSET)

        expected_records = []
        for n_rus in RU_SUBSET:
            ideal = ideal_makespan(list(workload.apps), n_rus)
            mobility = MobilityCalculator(
                n_rus=n_rus, reconfig_latency=workload.reconfig_latency
            ).compute_tables(workload.distinct_graphs())
            for spec in specs:
                result = run_simulation(
                    list(workload.apps),
                    n_rus=n_rus,
                    reconfig_latency=workload.reconfig_latency,
                    advisor=spec.make_advisor(),
                    semantics=spec.make_semantics(),
                    mobility_tables=mobility if spec.skip_events else None,
                    ideal_makespan_us=ideal,
                )
                expected_records.append(
                    PolicyRunRecord.from_result(spec.label, n_rus, result)
                )
        assert sweep.records == expected_records

    def test_parallel_equals_sequential(self, workload):
        specs = fig9a_specs()
        a = Session(workload=workload).sweep(specs, ru_counts=RU_SUBSET, parallel=1)
        b = Session(workload=workload).sweep(specs, ru_counts=RU_SUBSET, parallel=2)
        assert a.records == b.records

    def test_parallel_validation(self, workload):
        with pytest.raises(ExperimentError):
            Session(workload=workload).sweep(fig9a_specs(), parallel=0)

    def test_empty_specs_rejected(self, workload):
        with pytest.raises(ExperimentError):
            Session(workload=workload).sweep([])

    def test_default_ru_counts_is_device(self, workload):
        sweep = Session(Device(5), workload).sweep([lru_spec()])
        assert sweep.ru_counts == (5,)
        assert sweep.records[0].n_rus == 5


class TestArtifactCache:
    def test_mobility_computed_once_per_workload_and_rus(self, workload):
        """Acceptance: cache hits are observable, one miss per (wl, n_rus)."""
        # record_reuse off: the point here is that *re-executed* sweeps
        # ask the mobility cache once per plan node (a warm session would
        # otherwise serve the whole second sweep from the record memo).
        session = Session(workload=workload, record_reuse=False)
        specs = [
            local_lfd_spec(1, skip_events=True),
            local_lfd_spec(2, skip_events=True),
            local_lfd_spec(4, skip_events=True),
        ]
        session.sweep(specs, ru_counts=RU_SUBSET)
        assert session.cache.mobility_stats.computations == len(RU_SUBSET)
        # Sharing across specs is structural now — the experiment plan has
        # one mobility node per distinct (n_rus, latency), so a sweep asks
        # the cache exactly once per node rather than once per cell.
        assert session.cache.mobility_stats.hits == 0
        session.sweep(specs, ru_counts=RU_SUBSET)
        assert session.cache.mobility_stats.computations == len(RU_SUBSET)
        assert session.cache.mobility_stats.hits == len(RU_SUBSET)

    def test_ideal_computed_once_per_rus(self, workload):
        session = Session(workload=workload)
        session.sweep(fig9a_specs(), ru_counts=RU_SUBSET)
        assert session.cache.ideal_stats.computations == len(RU_SUBSET)

    def test_content_key_ignores_construction_path(self):
        w1 = quick_workload(length=15)
        w2 = paper_evaluation_workload(length=15)
        assert workload_content_key(w1) == workload_content_key(w2)

    def test_content_key_distinguishes_sequences(self):
        assert workload_content_key(quick_workload(length=15)) != workload_content_key(
            quick_workload(length=16)
        )

    def test_shared_cache_across_sessions(self, workload):
        cache = ArtifactCache()
        Session(workload=workload, cache=cache).run(lru_spec())
        Session(workload=workload, cache=cache).run(lru_spec())
        assert cache.ideal_stats.misses == 1
        assert cache.ideal_stats.hits == 1


class _RecordingHooks(SessionHooks):
    def __init__(self):
        self.started = []
        self.ended = []
        self.progress = []

    def on_run_start(self, cell):
        self.started.append(cell)

    def on_run_end(self, cell, record):
        self.ended.append((cell, record))

    def on_sweep_progress(self, done, total):
        self.progress.append((done, total))


class TestHooks:
    def test_sweep_lifecycle(self, workload):
        hooks = _RecordingHooks()
        specs = [lru_spec(), local_lfd_spec(1)]
        Session(workload=workload, hooks=(hooks,)).sweep(specs, ru_counts=RU_SUBSET)
        n = len(specs) * len(RU_SUBSET)
        assert len(hooks.started) == len(hooks.ended) == n
        assert hooks.progress == [(i, n) for i in range(1, n + 1)]
        assert all(isinstance(c, SweepCell) for c in hooks.started)

    def test_parallel_progress_monotone(self, workload):
        hooks = _RecordingHooks()
        Session(workload=workload, hooks=(hooks,)).sweep(
            [lru_spec(), local_lfd_spec(1)], ru_counts=RU_SUBSET, parallel=2
        )
        assert [p[0] for p in hooks.progress] == list(range(1, 5))

    def test_run_hooks(self, workload):
        hooks = _RecordingHooks()
        Session(workload=workload, hooks=(hooks,)).run(lru_spec())
        assert len(hooks.started) == len(hooks.ended) == 1
        assert hooks.ended[0][1].policy_label == "LRU"


class TestGrid:
    def test_latency_axis(self, workload):
        cells = Session(workload=workload).grid(
            [lru_spec()], ru_counts=(4,), reconfig_latencies=(1000, 4000)
        )
        assert [c.reconfig_latency for c in cells] == [1000, 4000]
        # Overhead scales with latency; reuse decisions may coincide.
        assert cells[0].record.overhead_ms <= cells[1].record.overhead_ms

    def test_full_cartesian(self, workload):
        specs = [lru_spec(), local_lfd_spec(1)]
        cells = Session(workload=workload).grid(
            specs, ru_counts=RU_SUBSET, reconfig_latencies=(2000, 4000)
        )
        assert len(cells) == len(specs) * len(RU_SUBSET) * 2

    def test_grid_ideal_shared_across_latencies(self, workload):
        session = Session(workload=workload)
        session.grid([lru_spec()], ru_counts=(4,), reconfig_latencies=(1000, 4000))
        # The zero-latency ideal is latency-independent: one computation.
        assert session.cache.ideal_stats.computations == 1


class TestSimulateShim:
    def test_simulate_warns_deprecation(self, workload):
        with pytest.warns(DeprecationWarning, match="simulate\\(\\) is deprecated"):
            simulate(
                list(workload.apps[:5]),
                n_rus=4,
                reconfig_latency=workload.reconfig_latency,
                advisor=lru_spec().make_advisor(),
            )

    def test_simulate_matches_run_simulation(self, workload):
        apps = list(workload.apps[:8])
        kwargs = dict(
            n_rus=4,
            reconfig_latency=workload.reconfig_latency,
            advisor=lru_spec().make_advisor(),
        )
        with pytest.warns(DeprecationWarning):
            shim = simulate(apps, **kwargs)
        direct = run_simulation(apps, **kwargs)
        assert shim.makespan_us == direct.makespan_us
        assert shim.trace.n_reconfigurations == direct.trace.n_reconfigurations


class TestScenarioRegistry:
    def test_unknown_kwarg_raises_workload_error_with_parameters(self):
        with pytest.raises(WorkloadError) as excinfo:
            make_scenario("round-robin", seed=3)
        message = str(excinfo.value)
        assert "'seed'" in message
        assert "n_rus" in message and "length" in message

    def test_scenario_info_metadata(self):
        info = scenario_info("paper-eval")
        assert info.name == "paper-eval"
        assert "500" in info.description
        assert "length" in info.parameters

    def test_decorator_registration_and_duplicate_rejection(self):
        from repro.workloads import scenarios as sc

        @sc.scenario("test-only-scenario", description="registry test")
        def _factory(length: int = 5):
            return quick_workload(length=length)

        try:
            assert "test-only-scenario" in sc.available_scenarios()
            made = sc.make_scenario("test-only-scenario", length=7)
            assert made.n_apps == 7
            with pytest.raises(WorkloadError):
                sc.scenario("test-only-scenario")(_factory)
        finally:
            del sc._REGISTRY["test-only-scenario"]


class TestArrivalAwareRuns:
    def test_arrival_times_change_ideal(self, workload):
        from repro.workloads.arrival import periodic_arrivals

        session = Session(workload=workload)
        arrivals = periodic_arrivals(workload.n_apps, 200_000)
        spaced = session.run(local_lfd_spec(1), arrival_times=arrivals)
        saturated = session.run(local_lfd_spec(1))
        # With slow periodic arrivals the ideal stretches to the arrival
        # horizon, so the measured makespan grows but the overhead doesn't
        # book idle time as reconfiguration cost.
        assert spaced.makespan_us > saturated.makespan_us
        assert spaced.ideal_makespan_us > saturated.ideal_makespan_us


class TestCompiledWorkloadIntegration:
    """PR-5: compile-once run setup and executor reuse."""

    def test_compiled_computed_once_per_session(self, session):
        session.run(lru_spec())
        session.run(local_lfd_spec(1))
        stats = session.cache.compiled_stats
        assert stats.computations == 1
        # The session memoizes the object itself; repeated access is free.
        assert session.compiled() is session.compiled()
        assert stats.computations == 1

    def test_compiled_shared_from_store_across_sessions(self, tmp_path, workload):
        root = tmp_path / "store"
        with Session(Device(4), workload, store=str(root)) as cold:
            cold.run(lru_spec())
            assert cold.cache.compiled_stats.computations == 1
        with Session(Device(4), workload, store=str(root)) as warm:
            warm.run(lru_spec())
            stats = warm.cache.compiled_stats
            assert stats.disk_hits == 1
            assert stats.computations == 0

    def test_compiled_run_equals_uncompiled_engine(self, session, workload):
        spec = local_lfd_spec(1)
        via_session = session.run(spec)
        direct = run_simulation(
            workload.apps,
            n_rus=workload.n_rus,
            reconfig_latency=workload.reconfig_latency,
            advisor=spec.make_advisor(),
            semantics=spec.make_semantics(),
        )
        assert via_session.summary() == direct.summary()

    def test_executor_reused_across_sweeps(self, session):
        specs = [lru_spec(), local_lfd_spec(1)]
        first = session.sweep(specs, ru_counts=(4, 5), parallel=2)
        pool = session._pool
        assert pool is not None
        second = session.sweep(specs, ru_counts=(4, 5), parallel=2)
        assert session._pool is pool  # same executor, workers kept warm
        for a, b in zip(first.records, second.records):
            assert a == b
        session.close()
        assert session._pool is None

    def test_executor_recreated_on_different_parallelism(self, session):
        specs = [lru_spec(), local_lfd_spec(1)]
        session.sweep(specs, ru_counts=(4, 5), parallel=2)
        pool = session._pool
        session.sweep(specs, ru_counts=(4, 5, 6), parallel=3)
        assert session._pool is not pool
        session.close()

    def test_close_is_idempotent_and_context_manager(self, workload):
        with Session(Device(4), workload) as s:
            s.sweep([lru_spec()], ru_counts=(4, 5), parallel=2)
        s.close()  # second close: no-op
        assert s._pool is None

    def test_close_concurrent_calls_are_safe(self, workload):
        import threading

        s = Session(Device(4), workload)
        s.sweep([lru_spec()], ru_counts=(4, 5), parallel=2)
        errors = []

        def close():
            try:
                s.close()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert s._pool is None

    def test_close_concurrent_with_inflight_sweep(self, workload):
        """close() racing a parallel sweep: clean error or clean result.

        The daemon shuts sessions down while sweeps may still be in
        flight; the only acceptable outcomes are a completed sweep or an
        ExperimentError — never a RuntimeError from the dead executor.
        """
        import threading
        import time as time_mod

        s = Session(Device(4), workload)
        s.compiled()  # pay design time up front so the sweep starts fast
        unexpected = []

        def run_sweep():
            try:
                s.sweep(
                    [lru_spec(), local_lfd_spec(1)],
                    ru_counts=(4, 5, 6),
                    parallel=2,
                )
            except ExperimentError:
                pass  # the documented close-during-sweep outcome
            except Exception as exc:  # pragma: no cover - the regression
                unexpected.append(exc)

        worker = threading.Thread(target=run_sweep)
        worker.start()
        time_mod.sleep(0.05)
        s.close()
        s.close()
        worker.join(60)
        assert not worker.is_alive()
        assert not unexpected
        assert s._pool is None

    def test_parallel_equals_sequential_with_warm_pool(self, session):
        specs = [lru_spec(), local_lfd_spec(1, skip_events=True)]
        seq = session.sweep(specs, ru_counts=(4, 6), parallel=1)
        par = session.sweep(specs, ru_counts=(4, 6), parallel=2)
        par2 = session.sweep(specs, ru_counts=(4, 6), parallel=2)
        assert seq.records == par.records == par2.records

    def test_cache_warm_covers_compiled_kind(self, tmp_path, workload):
        cache = ArtifactCache(store=None)
        cache.warm(workload, ru_counts=(4,))
        assert cache.compiled_stats.computations == 1
        # warm again: everything served from memory
        cache.warm(workload, ru_counts=(4,))
        assert cache.compiled_stats.computations == 1
        assert cache.stats_summary()["compiled"]["memory_hits"] >= 1
