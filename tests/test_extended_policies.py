"""Tests for the stateful cache-literature policies (LFU, LRU-K, CLOCK)."""

import pytest

from repro.core.policies.extended import ClockPolicy, LFUPolicy, LRUKPolicy
from repro.core.policies.registry import make_policy
from repro.core.replacement_module import PolicyAdvisor
from repro.graphs.builders import chain_graph
from repro.graphs.task import ConfigId, TaskInstance
from repro.sim.interface import DecisionContext
from repro.sim.ru import RUState, RUView
from repro.sim.simtime import ms
from repro.sim.simulator import simulate
from repro.sim.validation import validate_trace


def view(index, node, last_use=0):
    return RUView(
        index=index,
        config=ConfigId("G", node),
        state=RUState.LOADED,
        last_use=last_use,
        load_end=0,
    )


def ctx(candidates):
    return DecisionContext(
        now=0,
        incoming=TaskInstance(app_index=0, config=ConfigId("X", 99), exec_time=1),
        candidates=tuple(candidates),
        future_refs=(),
        oracle_refs=None,
        dl_configs=frozenset(),
        busy_configs=frozenset(),
        mobility=0,
        skipped_events=0,
    )


class TestLFU:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        for _ in range(3):
            policy.on_execution_end(0, ConfigId("G", 0), 10)
        policy.on_execution_end(1, ConfigId("G", 1), 10)
        assert policy.select_victim(ctx([view(0, 0), view(1, 1)])) == 1

    def test_frequency_tie_breaks_by_recency(self):
        policy = LFUPolicy()
        policy.on_execution_end(0, ConfigId("G", 0), 50)
        policy.on_execution_end(1, ConfigId("G", 1), 10)
        # Same frequency (1 each): evict the older-used one.
        choice = policy.select_victim(
            ctx([view(0, 0, last_use=50), view(1, 1, last_use=10)])
        )
        assert choice == 1

    def test_unknown_config_counts_as_zero(self):
        policy = LFUPolicy()
        policy.on_execution_end(0, ConfigId("G", 0), 10)
        assert policy.select_victim(ctx([view(0, 0), view(1, 1)])) == 1

    def test_reset_clears_counts(self):
        policy = LFUPolicy()
        policy.on_execution_end(0, ConfigId("G", 0), 10)
        policy.reset()
        assert policy._uses == {}


class TestLRUK:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUKPolicy(k=0)

    def test_once_used_evicted_before_twice_used(self):
        policy = LRUKPolicy(k=2)
        # config 0 used twice, config 1 used once (no 2nd recency).
        policy.on_execution_end(0, ConfigId("G", 0), 10)
        policy.on_execution_end(0, ConfigId("G", 0), 20)
        policy.on_execution_end(1, ConfigId("G", 1), 30)
        assert policy.select_victim(ctx([view(0, 0), view(1, 1)])) == 1

    def test_kth_recency_ordering(self):
        policy = LRUKPolicy(k=2)
        for t in (10, 20):
            policy.on_execution_end(0, ConfigId("G", 0), t)
        for t in (30, 40):
            policy.on_execution_end(1, ConfigId("G", 1), t)
        # 2nd-most-recent: config0 -> 10, config1 -> 30: evict config0.
        assert policy.select_victim(ctx([view(0, 0), view(1, 1)])) == 0

    def test_name_includes_k(self):
        assert LRUKPolicy(k=3).name == "LRU-3"

    def test_reset(self):
        policy = LRUKPolicy()
        policy.on_execution_end(0, ConfigId("G", 0), 10)
        policy.reset()
        assert policy._history == {}


class TestClock:
    def test_second_chance_cycle(self):
        policy = ClockPolicy()
        # Both referenced: first sweep clears, second sweep evicts RU0.
        policy.on_execution_end(0, ConfigId("G", 0), 1)
        policy.on_execution_end(1, ConfigId("G", 1), 1)
        assert policy.select_victim(ctx([view(0, 0), view(1, 1)])) == 0

    def test_unreferenced_evicted_first(self):
        policy = ClockPolicy()
        policy.on_execution_end(0, ConfigId("G", 0), 1)  # RU0 referenced
        assert policy.select_victim(ctx([view(0, 0), view(1, 1)])) == 1

    def test_hand_advances(self):
        policy = ClockPolicy()
        first = policy.select_victim(ctx([view(0, 0), view(1, 1)]))
        second = policy.select_victim(ctx([view(0, 0), view(1, 1)]))
        assert first == 0 and second == 1  # hand moved past RU0

    def test_reset(self):
        policy = ClockPolicy()
        policy.on_execution_end(0, ConfigId("G", 0), 1)
        policy.select_victim(ctx([view(0, 0), view(1, 1)]))
        policy.reset()
        assert policy._hand == 0 and policy._referenced == {}


class TestInSimulation:
    """Stateful policies must run cleanly end-to-end via the advisor."""

    @pytest.mark.parametrize("name", ["lfu", "lru-2", "clock"])
    def test_full_simulation_valid(self, name):
        g = chain_graph("G", [ms(5)] * 6)
        h = chain_graph("H", [ms(5)] * 5)
        apps = [g, h, g, h, g]
        result = simulate(apps, 3, ms(4), PolicyAdvisor(make_policy(name)))
        validate_trace(result.trace, apps)
        assert result.trace.n_executions == sum(len(a) for a in apps)

    def test_registry_has_extended_policies(self):
        from repro.core.policies.registry import available_policies

        assert {"lfu", "lru-2", "clock"} <= set(available_policies())

    def test_notifications_forwarded_through_advisor(self):
        class Spy(LFUPolicy):
            pass

        spy = Spy()
        g = chain_graph("G", [ms(5), ms(5)])
        simulate([g, g], 4, ms(4), PolicyAdvisor(spy))
        # Four executions -> four use notifications recorded.
        assert sum(spy._uses.values()) == 4
