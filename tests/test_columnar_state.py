"""The columnar engine core: dict-shadow equivalence and slot coverage.

The struct-of-arrays refactor replaced the engine's per-application
``remaining_preds`` dicts and per-RU attribute traffic with preallocated
integer columns owned by :class:`~repro.sim.columns.EngineState`.  Two
pinning layers:

1. **Dict-shadow equivalence** — a manager subclass maintains the
   pre-refactor object/dict bookkeeping (per-app ``{node_id: remaining
   predecessor count}`` dicts, per-app unfinished counters) alongside
   every completion and asserts the columns agree after each one, across
   every registered scenario × policy and hypothesis-random workloads.
2. **Slot coverage** — every hot-loop class (engine state, events,
   trace records, RU machinery, task instances, decision carriers) is
   ``__slots__``-only: no per-instance ``__dict__``, unknown attribute
   assignment raises.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies.registry import available_policies, make_policy
from repro.core.replacement_module import PolicyAdvisor
from repro.graphs.random_graphs import random_benchmark_like_suite
from repro.graphs.task import TaskInstance
from repro.sim.columns import NO_INDEX, EngineState
from repro.sim.events import EventKind, EventQueue
from repro.sim.interface import Decision, DecisionContext
from repro.sim.manager import ExecutionManager
from repro.sim.ru import RU, RUState, RUView
from repro.sim.semantics import ManagerSemantics
from repro.sim.trace import ExecRecord, ReconfigRecord
from repro.sim.tracing import ExecStart, Reuse, TraceSink
from repro.workloads.compiled import CompiledWorkload
from repro.workloads.scenarios import (
    available_scenarios,
    make_scenario,
    scenario_info,
)
from repro.workloads.sequence import random_sequence

SMALL = {"length": 14}


def _small_workload(name):
    info = scenario_info(name)
    kwargs = {k: v for k, v in SMALL.items() if k in info.parameters}
    return make_scenario(name, **kwargs)


def _hardware(workload):
    if workload.device is not None:
        return {"device": workload.device}
    return {"n_rus": workload.n_rus, "reconfig_latency": workload.reconfig_latency}


# ----------------------------------------------------------------------
# 1. Dict-shadow equivalence
# ----------------------------------------------------------------------
class _ShadowManager(ExecutionManager):
    """Runs the pre-refactor dict bookkeeping next to the columns.

    On every task completion the shadow decrements a plain
    ``{node_id: count}`` dict for the finished node's successors — the
    algorithm the columnar ``remaining`` column replaced — and then
    checks every app's columns against the dicts.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shadow_remaining = [
            {nid: capp.pred_counts[nid] for nid in capp.rec_order}
            for capp in self._app_capps
        ]
        self.shadow_unfinished = [capp.n_tasks for capp in self._app_capps]
        self.checks = 0

    def _handle_end_of_execution(self, ru_index, instance):
        da = instance.app_index
        capp = self._app_capps[da]
        # ru_flat is overwritten as soon as the freed RU is re-claimed by
        # the dispatch super() triggers — resolve the node first.
        node_id = capp.rec_order[self._ru_flat[ru_index] - self.compiled.app_offsets[da]]
        super()._handle_end_of_execution(ru_index, instance)
        for succ in capp.successors[node_id]:
            self.shadow_remaining[da][succ] -= 1
        self.shadow_unfinished[da] -= 1
        self._compare()

    def _compare(self):
        offsets = self.compiled.app_offsets
        for a, capp in enumerate(self._app_capps):
            assert self._unfinished[a] == self.shadow_unfinished[a]
            base = offsets[a]
            shadow = self.shadow_remaining[a]
            for pos, nid in enumerate(capp.rec_order):
                assert self._remaining[base + pos] == shadow[nid], (
                    f"app {a} node {nid}: column "
                    f"{self._remaining[base + pos]} != dict {shadow[nid]}"
                )
        self.checks += 1


def _shadow_run(graphs, policy_name, **hardware):
    advisor = PolicyAdvisor(
        make_policy(policy_name), skip_events=(policy_name == "local-lfd")
    )
    mgr = _ShadowManager(
        graphs=graphs,
        advisor=advisor,
        semantics=ManagerSemantics(
            lookahead_apps=1, provide_oracle=(policy_name == "lfd")
        ),
        trace="aggregate",
        **hardware,
    )
    mgr.run()
    return mgr


@pytest.mark.parametrize("scenario_name", available_scenarios())
@pytest.mark.parametrize("policy_name", available_policies())
def test_columns_match_dict_shadow_all_scenarios(scenario_name, policy_name):
    workload = _small_workload(scenario_name)
    mgr = _shadow_run(workload.apps, policy_name, **_hardware(workload))
    total_tasks = sum(len(g) for g in workload.apps)
    assert mgr.checks == total_tasks  # one comparison per completed task
    assert all(n == 0 for n in mgr.shadow_unfinished)
    assert all(r == 0 for r in mgr.state.remaining)
    assert mgr.state.apps_left == 0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_rus=st.integers(min_value=3, max_value=6),
    latency=st.sampled_from([0, 1000, 4000]),
    length=st.integers(min_value=1, max_value=12),
    policy=st.sampled_from(["lru", "fifo", "lfu", "local-lfd", "mru"]),
)
def test_property_columns_match_dict_shadow(seed, n_rus, latency, length, policy):
    """Hypothesis: random catalogs and sequences keep columns == dicts."""
    catalog = random_benchmark_like_suite(3, seed=seed, size_range=(2, 3))
    graphs = random_sequence(catalog, length, seed=seed + 1)
    mgr = _shadow_run(
        graphs, policy, n_rus=n_rus, reconfig_latency=latency
    )
    assert mgr.checks == sum(len(g) for g in graphs)
    assert all(r == 0 for r in mgr.state.remaining)


def test_engine_state_initial_columns():
    workload = _small_workload("quick")
    compiled = CompiledWorkload.compile(workload.apps)
    state = EngineState(compiled, n_rus=4)
    assert state.remaining == list(compiled.pred_template_flat)
    assert state.unfinished == [len(g) for g in workload.apps]
    assert state.skipped == [0] * len(workload.apps)
    assert state.loc == [NO_INDEX] * compiled.n_configs
    assert state.ru_cid == [NO_INDEX] * 4
    assert state.ru_app == [NO_INDEX] * 4
    assert state.ru_flat == [NO_INDEX] * 4
    assert state.apps_left == len(workload.apps)


# ----------------------------------------------------------------------
# 2. Slot coverage: no __dict__ anywhere on the hot path
# ----------------------------------------------------------------------
def _engine_state():
    workload = _small_workload("quick")
    return EngineState(CompiledWorkload.compile(workload.apps), n_rus=4)


_CONFIG = ("g", 1)

HOT_INSTANCES = [
    ("TaskInstance", lambda: TaskInstance(0, _CONFIG, 100)),
    ("EngineState", _engine_state),
    ("EventQueue", lambda: EventQueue()),
    ("RU", lambda: RU(0)),
    (
        "RUView",
        lambda: RUView(
            index=0, config=_CONFIG, state=RUState.LOADED, last_use=0, load_end=0
        ),
    ),
    ("Decision", lambda: Decision.load(0)),
    (
        "DecisionContext",
        lambda: DecisionContext(
            now=0,
            incoming=TaskInstance(0, _CONFIG, 100),
            candidates=(),
            future_refs=(),
            oracle_refs=None,
            dl_configs=frozenset(),
            busy_configs=frozenset(),
            mobility=0,
            skipped_events=0,
        ),
    ),
    ("ExecStart", lambda: ExecStart(0, 0, _CONFIG, 0, 10, False)),
    ("Reuse", lambda: Reuse(0, 0, _CONFIG, 0)),
    ("ExecRecord", lambda: ExecRecord(0, _CONFIG, 0, 0, 10, False)),
    ("ReconfigRecord", lambda: ReconfigRecord(0, _CONFIG, 0, 0, 10)),
]


@pytest.mark.parametrize(
    "factory", [f for _, f in HOT_INSTANCES], ids=[n for n, _ in HOT_INSTANCES]
)
def test_hot_loop_classes_are_slot_only(factory):
    instance = factory()
    assert not hasattr(instance, "__dict__"), type(instance).__name__
    with pytest.raises(AttributeError):
        instance.definitely_not_a_slot = 1


class _EventAudit(TraceSink):
    """Asserts every emitted event instance is dict-free."""

    def __init__(self):
        self.n = 0

    def on_event(self, event):
        assert not hasattr(event, "__dict__"), type(event).__name__
        self.n += 1


def test_full_run_emits_only_slotted_events():
    workload = _small_workload("quick")
    audit = _EventAudit()
    advisor = PolicyAdvisor(make_policy("lru"))
    ExecutionManager(
        graphs=workload.apps,
        advisor=advisor,
        semantics=ManagerSemantics(lookahead_apps=1),
        trace="aggregate",
        extra_sinks=(audit,),
        **_hardware(workload),
    ).run()
    assert audit.n > 0


def test_event_queue_tuples_and_kinds():
    # The queue itself is slot-only and stores plain tuples.
    q = EventQueue()
    q.push(5, EventKind.APP_ARRIVAL, None)
    assert not hasattr(q, "__dict__")
    assert isinstance(q.pop(), tuple)
