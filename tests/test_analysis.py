"""Tests for repro.graphs.analysis."""

import pytest

from repro.graphs.analysis import (
    analyze,
    critical_path_nodes,
    is_transitive_edge,
    level_map,
    max_concurrent_tasks,
    transitive_closure,
)
from repro.graphs.builders import chain_graph, fork_join_graph, independent_tasks_graph
from repro.graphs.task import TaskSpec
from repro.graphs.task_graph import TaskGraph


class TestAnalyze:
    def test_chain_stats(self):
        stats = analyze(chain_graph("C", [10, 20, 30]))
        assert stats.n_tasks == 3
        assert stats.n_edges == 2
        assert stats.depth == 2
        assert stats.max_width == 1
        assert stats.critical_path_us == 60
        assert stats.total_exec_us == 60
        assert stats.parallelism == pytest.approx(1.0)

    def test_parallel_stats(self):
        stats = analyze(independent_tasks_graph("I", [10, 10, 10]))
        assert stats.depth == 0
        assert stats.max_width == 3
        assert stats.parallelism == pytest.approx(3.0)

    def test_as_row_shape(self):
        row = analyze(chain_graph("C", [1000])).as_row()
        assert row[0] == "C"
        assert len(row) == 8


class TestLevelMap:
    def test_fork_join_levels(self):
        g = fork_join_graph("FJ", 1, [1, 1], 1)
        levels = level_map(g)
        assert levels[1] == 0
        assert levels[2] == levels[3] == 1
        assert levels[4] == 2


class TestCriticalPathNodes:
    def test_chain_path(self):
        g = chain_graph("C", [1, 2, 3])
        assert critical_path_nodes(g) == [1, 2, 3]

    def test_picks_heavier_branch(self):
        g = TaskGraph(
            "G",
            [TaskSpec(1, 10), TaskSpec(2, 100), TaskSpec(3, 5), TaskSpec(4, 1)],
            [(1, 2), (1, 3), (2, 4), (3, 4)],
        )
        assert critical_path_nodes(g) == [1, 2, 4]

    def test_path_is_connected(self):
        g = fork_join_graph("FJ", 2, [3, 9, 4], 1)
        path = critical_path_nodes(g)
        for a, b in zip(path, path[1:]):
            assert b in g.successors(a)


class TestTransitiveClosure:
    def test_chain_closure(self):
        g = chain_graph("C", [1, 1, 1])
        closure = transitive_closure(g)
        assert closure[1] == frozenset({2, 3})
        assert closure[3] == frozenset()

    def test_transitive_edge_detection(self):
        g = TaskGraph(
            "G",
            [TaskSpec(1, 1), TaskSpec(2, 1), TaskSpec(3, 1)],
            [(1, 2), (2, 3), (1, 3)],
        )
        assert is_transitive_edge(g, 1, 3)
        assert not is_transitive_edge(g, 1, 2)


class TestMaxConcurrency:
    def test_chain_is_one(self):
        assert max_concurrent_tasks(chain_graph("C", [5, 5, 5])) == 1

    def test_parallel_counts_all(self):
        assert max_concurrent_tasks(independent_tasks_graph("I", [5, 5, 5, 5])) == 4

    def test_fork_join_counts_branches(self):
        assert max_concurrent_tasks(fork_join_graph("FJ", 1, [5, 5, 5], 1)) == 3

    def test_boundary_touch_not_concurrent(self):
        # 1 finishes exactly when 2 starts: not concurrent.
        g = TaskGraph("G", [TaskSpec(1, 10), TaskSpec(2, 10)], [(1, 2)])
        assert max_concurrent_tasks(g) == 1
