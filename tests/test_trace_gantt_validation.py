"""Tests for trace records, the Gantt renderer and the trace validator."""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.exceptions import TraceInvariantError
from repro.graphs.builders import chain_graph
from repro.graphs.task import ConfigId
from repro.sim.gantt import render_gantt, render_timeline_events
from repro.sim.simtime import ms
from repro.sim.simulator import simulate
from repro.sim.trace import ExecRecord, ReconfigRecord, Trace
from repro.sim.validation import validate_trace


def run_chain():
    g = chain_graph("G", [ms(10), ms(10)])
    result = simulate([g, g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
    return g, result.trace


class TestTraceQueries:
    def test_counters(self):
        g, trace = run_chain()
        assert trace.n_executions == 4
        assert trace.n_reused_executions == 2
        assert trace.n_reconfigurations == 2
        assert trace.reuse_rate() == pytest.approx(0.5)

    def test_per_ru_queries_sorted(self):
        _, trace = run_chain()
        for ru in range(trace.n_rus):
            execs = trace.executions_on_ru(ru)
            assert execs == sorted(execs, key=lambda e: e.start)

    def test_busy_time(self):
        _, trace = run_chain()
        busy = trace.busy_time_per_ru()
        assert sum(busy.values()) == 4 * ms(10)

    def test_total_reconfiguration_time(self):
        _, trace = run_chain()
        assert trace.total_reconfiguration_time() == 2 * ms(4)

    def test_empty_trace_metrics(self):
        trace = Trace(n_rus=2, reconfig_latency=ms(4))
        assert trace.makespan == 0
        assert trace.reuse_rate() == 0.0

    def test_summary_keys(self):
        _, trace = run_chain()
        summary = trace.summary()
        assert summary["executions"] == 4
        assert summary["reused"] == 2


class TestGantt:
    def test_renders_all_rus(self):
        _, trace = run_chain()
        text = render_gantt(trace)
        for ru in range(trace.n_rus):
            assert f"RU{ru}:" in text

    def test_contains_reconfig_marks(self):
        _, trace = run_chain()
        assert "#" in render_gantt(trace)

    def test_scales_to_max_width(self):
        _, trace = run_chain()
        text = render_gantt(trace, cell_us=1, max_width=40)
        ru_lines = [l for l in text.splitlines() if l.startswith("RU")]
        assert ru_lines
        assert max(len(line) for line in ru_lines) <= 40 + 10  # label + bars

    def test_empty_trace(self):
        assert "empty" in render_gantt(Trace(n_rus=1, reconfig_latency=0))

    def test_invalid_cell(self):
        with pytest.raises(ValueError):
            render_gantt(Trace(n_rus=1, reconfig_latency=0), cell_us=0)

    def test_timeline_events_chronological(self):
        _, trace = run_chain()
        lines = render_timeline_events(trace).splitlines()
        times = [int(line.split("us")[0]) for line in lines]
        assert times == sorted(times)

    def test_timeline_limit(self):
        _, trace = run_chain()
        assert len(render_timeline_events(trace, limit=3).splitlines()) == 3


class TestValidator:
    def test_valid_trace_passes(self):
        g, trace = run_chain()
        validate_trace(trace, [g, g])

    def _base(self):
        g = chain_graph("G", [ms(10)])
        cfg = ConfigId("G", 1)
        return g, cfg

    def test_detects_overlapping_reconfigs(self):
        g, cfg = self._base()
        trace = Trace(n_rus=2, reconfig_latency=ms(4))
        trace.reconfigs = [
            ReconfigRecord(ru=0, config=cfg, app_index=0, start=0, end=ms(4)),
            ReconfigRecord(ru=1, config=cfg, app_index=0, start=ms(2), end=ms(6)),
        ]
        with pytest.raises(TraceInvariantError, match="I1"):
            validate_trace(trace, [g])

    def test_detects_missing_load(self):
        g, cfg = self._base()
        trace = Trace(n_rus=1, reconfig_latency=ms(4))
        trace.executions = [
            ExecRecord(ru=0, config=cfg, app_index=0, start=0, end=ms(10), reused=False)
        ]
        with pytest.raises(TraceInvariantError, match="I3"):
            validate_trace(trace, [g])

    def test_detects_dependency_violation(self):
        g = chain_graph("G", [ms(10), ms(10)])
        c1, c2 = ConfigId("G", 1), ConfigId("G", 2)
        trace = Trace(n_rus=2, reconfig_latency=ms(4))
        trace.reconfigs = [
            ReconfigRecord(ru=0, config=c1, app_index=0, start=0, end=ms(4)),
            ReconfigRecord(ru=1, config=c2, app_index=0, start=ms(4), end=ms(8)),
        ]
        trace.executions = [
            ExecRecord(ru=0, config=c1, app_index=0, start=ms(4), end=ms(14), reused=False),
            # child starts before parent ends:
            ExecRecord(ru=1, config=c2, app_index=0, start=ms(8), end=ms(18), reused=False),
        ]
        with pytest.raises(TraceInvariantError, match="I4"):
            validate_trace(trace, [g])

    def test_detects_missing_execution(self):
        g, cfg = self._base()
        trace = Trace(n_rus=1, reconfig_latency=ms(4))
        with pytest.raises(TraceInvariantError, match="I6"):
            validate_trace(trace, [g])

    def test_detects_barrier_violation(self):
        a = chain_graph("A", [ms(10)])
        b = chain_graph("B", [ms(10)])
        ca, cb = ConfigId("A", 1), ConfigId("B", 1)
        trace = Trace(n_rus=2, reconfig_latency=ms(4))
        trace.reconfigs = [
            ReconfigRecord(ru=0, config=ca, app_index=0, start=0, end=ms(4)),
            ReconfigRecord(ru=1, config=cb, app_index=1, start=ms(4), end=ms(8)),
        ]
        trace.executions = [
            ExecRecord(ru=0, config=ca, app_index=0, start=ms(4), end=ms(14), reused=False),
            # app 1 starts before app 0 ends:
            ExecRecord(ru=1, config=cb, app_index=1, start=ms(8), end=ms(18), reused=False),
        ]
        with pytest.raises(TraceInvariantError, match="I5"):
            validate_trace(trace, [a, b])
