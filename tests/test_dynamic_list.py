"""Tests for the Dynamic List model (paper Fig. 1)."""

import pytest

from repro.core.dynamic_list import DynamicList, replay_fig1
from repro.exceptions import WorkloadError


class TestDynamicList:
    def test_fifo_order(self):
        dl = DynamicList.from_names(["A", "B"])
        dl.enqueue("C")
        assert dl.snapshot() == ["A", "B", "C"]

    def test_head(self):
        dl = DynamicList.from_names(["A", "B"])
        assert dl.head() == "A"

    def test_head_empty(self):
        assert DynamicList().head() is None

    def test_window_excludes_head(self):
        dl = DynamicList.from_names(["A", "B", "C", "D"])
        assert dl.window(2) == ["B", "C"]
        assert dl.window(0) == []
        assert dl.window(99) == ["B", "C", "D"]

    def test_window_negative_rejected(self):
        with pytest.raises(WorkloadError):
            DynamicList().window(-1)

    def test_complete_head_with_arrivals(self):
        dl = DynamicList.from_names(["A", "B"])
        done = dl.complete_head(arrivals=["C", "C"])
        assert done == "A"
        assert dl.snapshot() == ["B", "C", "C"]

    def test_complete_empty_rejected(self):
        with pytest.raises(WorkloadError):
            DynamicList().complete_head()

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            DynamicList().enqueue("")

    def test_history_recorded(self):
        dl = DynamicList.from_names(["A", "B"])
        dl.complete_head()
        assert dl.history == [("A", ("B",))]

    def test_len_and_bool(self):
        dl = DynamicList()
        assert not dl and len(dl) == 0
        dl.enqueue("A")
        assert dl and len(dl) == 1


class TestFig1Replay:
    """The paper's Fig. 1 walk-through, snapshot by snapshot."""

    def test_snapshots(self):
        snapshots = replay_fig1()
        assert snapshots[0] == ["JPEG", "MPEG1", "HOUGH"]
        assert snapshots[1] == ["MPEG1", "HOUGH", "MPEG1", "MPEG1"]
        assert snapshots[2] == ["HOUGH", "MPEG1", "MPEG1"]

    def test_scheduler_knows_3_of_5_initially(self):
        # "the scheduler only knows 3 out of the whole sequence of 5
        # applications that will be executed"
        snapshots = replay_fig1()
        total_executed = 5  # JPEG + 3x MPEG1 + HOUGH in the full walk
        assert len(snapshots[0]) == 3 < total_executed
