"""Tests for the synthesized multimedia benchmark suite (paper §VI)."""

import pytest

from repro.graphs.analysis import max_concurrent_tasks
from repro.graphs.multimedia import (
    DEFAULT_RECONFIG_LATENCY_US,
    PAPER_INITIAL_EXEC_MS,
    benchmark_by_name,
    benchmark_suite,
    hough_transform,
    jpeg_decoder,
    mpeg1_encoder,
    total_distinct_configurations,
)


class TestNodeCounts:
    """The paper states the benchmark sizes explicitly (§VI)."""

    def test_jpeg_has_4_nodes(self):
        assert len(jpeg_decoder()) == 4

    def test_mpeg1_has_5_nodes(self):
        assert len(mpeg1_encoder()) == 5

    def test_hough_has_6_nodes(self):
        assert len(hough_transform()) == 6

    def test_total_configurations_is_15(self):
        # "15 different tasks compete for just 4 reconfigurable units"
        assert total_distinct_configurations() == 15


class TestInitialExecutionTimes:
    """Ideal makespans must match the paper's Table II column 2."""

    @pytest.mark.parametrize("name", ["JPEG", "MPEG1", "HOUGH"])
    def test_critical_path_matches_paper(self, name):
        graph = benchmark_by_name(name)
        assert graph.critical_path_length() == PAPER_INITIAL_EXEC_MS[name] * 1000


class TestStructure:
    def test_all_graphs_fit_on_4_rus(self):
        # The paper sweeps 4..10 RUs; the barrier model requires max
        # intra-app concurrency <= 4.
        for graph in benchmark_suite():
            assert max_concurrent_tasks(graph) <= 4

    def test_distinct_names(self):
        names = [g.name for g in benchmark_suite()]
        assert len(set(names)) == 3

    def test_lookup_by_name_case_insensitive(self):
        assert benchmark_by_name("jpeg").name == "JPEG"
        assert benchmark_by_name("Mpeg1").name == "MPEG1"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            benchmark_by_name("H264")

    def test_default_latency_is_4ms(self):
        assert DEFAULT_RECONFIG_LATENCY_US == 4000

    def test_suite_returns_fresh_equal_graphs(self):
        a, b = benchmark_suite(), benchmark_suite()
        assert [g.name for g in a] == [g.name for g in b]
        assert all(x == y for x, y in zip(a, b))

    def test_hough_has_parallel_votes(self):
        hough = hough_transform()
        # Three vote tasks share the same predecessor (edge_detect).
        assert hough.successors(2) == (3, 4, 5)

    def test_jpeg_is_pipeline(self):
        jpeg = jpeg_decoder()
        assert jpeg.sources() == (1,)
        assert jpeg.sinks() == (4,)
        assert all(len(jpeg.predecessors(n)) <= 1 for n in jpeg.node_ids)
