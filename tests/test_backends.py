"""Cross-backend conformance, fault-injection and plan property tests.

Every :class:`~repro.backends.base.ExecutorBackend` implementation must
satisfy the same observable contract (see ``docs/backends.md``):

1. records come back in cell order and are byte-identical to the serial
   reference path;
2. the started/finished/progressed callbacks fire per cell, progress
   monotonically;
3. ``close()`` is idempotent and the backend works as a context manager;
4. a failed batch leaves the backend reusable — the next sweep runs.

The work-stealing backend additionally gets fault injection (a worker
that claims a cell and dies, a corrupt queue entry) and the plan/queue
layers get hypothesis property tests: any k-worker partition of a sweep
produces exactly the ``parallel=1`` records, and a topological order of
an experiment plan never schedules a cell before its predecessors.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import random
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts.schema import decode_task
from repro.artifacts.store import ArtifactStore
from repro.backends import (
    BACKEND_NAMES,
    CellQueue,
    ExecutorBackend,
    InlineBackend,
    ProcessPoolBackend,
    SweepCell,
    WorkStealingBackend,
    active_sweeps,
    build_plan,
    resolve_backend,
    run_worker,
)
from repro.core.policy_spec import lfd_spec, local_lfd_spec, lru_spec
from repro.exceptions import ExperimentError
from repro.session import Session
from repro.workloads.scenarios import quick_workload

RU_SUBSET = (4, 6)
SPECS = [lru_spec(), local_lfd_spec(1, skip_events=True)]


@pytest.fixture(scope="module")
def workload():
    return quick_workload(length=20)


@pytest.fixture(scope="module")
def small_workload():
    return quick_workload(length=10)


def _record_blobs(records):
    """Canonical byte form of a record sequence, for identity asserts."""
    return [
        json.dumps(dataclasses.asdict(r), sort_keys=True) for r in records
    ]


@pytest.fixture(scope="module")
def serial_baseline(workload):
    """The reference records: default backend, parallel=1."""
    sweep = Session(workload=workload).sweep(SPECS, ru_counts=RU_SUBSET)
    return _record_blobs(sweep.records)


def _make_backend(name: str, tmp_path) -> ExecutorBackend:
    if name == "inline":
        return InlineBackend()
    if name == "process-pool":
        return ProcessPoolBackend(workers=2)
    assert name == "work-stealing"
    return WorkStealingBackend(
        ArtifactStore(tmp_path / "ws-store"),
        workers=2,
        lease_ttl=20.0,
        poll_s=0.02,
        timeout_s=300,
    )


# ----------------------------------------------------------------------
# The conformance suite: every backend, same contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestBackendConformance:
    def test_records_byte_identical_to_serial(
        self, name, tmp_path, workload, serial_baseline
    ):
        with _make_backend(name, tmp_path) as backend:
            sweep = Session(workload=workload, backend=backend).sweep(
                SPECS, ru_counts=RU_SUBSET
            )
        assert _record_blobs(sweep.records) == serial_baseline

    def test_records_in_cell_order(self, name, tmp_path, workload):
        with _make_backend(name, tmp_path) as backend:
            sweep = Session(workload=workload, backend=backend).sweep(
                SPECS, ru_counts=RU_SUBSET
            )
        assert [(r.policy_label, r.n_rus) for r in sweep.records] == [
            (spec.label, n_rus) for n_rus in RU_SUBSET for spec in SPECS
        ]

    def test_callbacks_fire_per_cell(self, name, tmp_path, workload):
        from repro.session import SessionHooks

        class Recorder(SessionHooks):
            def __init__(self):
                self.started, self.ended, self.progress = [], [], []

            def on_run_start(self, cell):
                self.started.append(cell)

            def on_run_end(self, cell, record):
                self.ended.append((cell, record))

            def on_sweep_progress(self, done, total):
                self.progress.append((done, total))

        hooks = Recorder()
        with _make_backend(name, tmp_path) as backend:
            Session(workload=workload, hooks=(hooks,), backend=backend).sweep(
                SPECS, ru_counts=RU_SUBSET
            )
        n = len(SPECS) * len(RU_SUBSET)
        assert len(hooks.started) == len(hooks.ended) == n
        assert [p[0] for p in hooks.progress] == list(range(1, n + 1))
        assert all(total == n for _, total in hooks.progress)

    def test_close_idempotent_and_context_manager(self, name, tmp_path, workload):
        backend = _make_backend(name, tmp_path)
        with backend as entered:
            assert entered is backend
            Session(workload=workload, backend=backend).sweep(
                [lru_spec()], ru_counts=(4,)
            )
        backend.close()  # second close after __exit__: no-op
        backend.close()

    def test_reusable_across_sweeps(self, name, tmp_path, workload):
        with _make_backend(name, tmp_path) as backend:
            session = Session(workload=workload, backend=backend)
            first = session.sweep(SPECS, ru_counts=(4,))
            second = session.sweep(SPECS, ru_counts=(4,))
        assert _record_blobs(first.records) == _record_blobs(second.records)

    def test_reusable_after_failed_batch(self, name, tmp_path, workload):
        # Inline/pool re-raise the cell's original exception; the
        # work-stealing queue can only transport the message, so it
        # surfaces as ExperimentError.  Both carry the cell's reason.
        with _make_backend(name, tmp_path) as backend:
            session = Session(workload=workload, backend=backend)
            with pytest.raises(Exception, match="boom-policy"):
                session.sweep([_boom_spec()], ru_counts=(4,))
            sweep = session.sweep([lru_spec()], ru_counts=(4,))
        assert len(sweep.records) == 1


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_none_auto_selects_by_parallelism(self):
        assert isinstance(resolve_backend(None, parallel=1), InlineBackend)
        assert isinstance(resolve_backend(None, parallel=4), ProcessPoolBackend)

    def test_names_and_alias(self, tmp_path):
        assert isinstance(resolve_backend("inline"), InlineBackend)
        assert isinstance(resolve_backend("process-pool"), ProcessPoolBackend)
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)
        store = ArtifactStore(tmp_path / "s")
        ws = resolve_backend("work-stealing", parallel=3, store=store)
        assert isinstance(ws, WorkStealingBackend)
        assert ws.workers == 3

    def test_instance_passes_through(self):
        backend = InlineBackend()
        assert resolve_backend(backend, parallel=8) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown backend"):
            resolve_backend("carrier-pigeon")

    def test_work_stealing_requires_store(self):
        with pytest.raises(ExperimentError, match="store"):
            resolve_backend("work-stealing")

    def test_session_validates_backend_eagerly(self, workload, tmp_path):
        with pytest.raises(ExperimentError, match="unknown backend"):
            Session(workload=workload, backend="carrier-pigeon")
        with pytest.raises(ExperimentError, match="store"):
            Session(workload=workload, backend="work-stealing")
        # With a store attached the same selection is accepted.
        Session(
            workload=workload, store=tmp_path / "s", backend="work-stealing"
        ).close()

    def test_session_process_alias(self, workload):
        session = Session(workload=workload, backend="process")
        try:
            sweep = session.sweep(SPECS, ru_counts=(4,), parallel=2)
            assert session._pool is not None
        finally:
            session.close()
        assert len(sweep.records) == len(SPECS)


# ----------------------------------------------------------------------
# The experiment plan
# ----------------------------------------------------------------------
SPEC_POOL = (
    lru_spec(),
    local_lfd_spec(1, skip_events=True),
    local_lfd_spec(2),
    lfd_spec(),
)


class TestExperimentPlan:
    def test_session_plan_shape(self, workload):
        plan = Session(workload=workload).plan(SPECS, ru_counts=RU_SUBSET)
        counts = plan.counts()
        assert counts["cell"] == len(SPECS) * len(RU_SUBSET)
        assert counts["compile"] == counts["reduce"] == 1
        # One mobility node per (n_rus, latency) among skip cells, one
        # ideal node per (n_rus, semantics projection): both SPECS
        # project to the same zero-latency schedule, so sharing is
        # structural — one ideal per RU count for the whole panel.
        assert counts["mobility"] == len(RU_SUBSET)
        assert counts["ideal"] == len(RU_SUBSET)

    def test_empty_batch_rejected(self):
        with pytest.raises(ExperimentError, match="at least one cell"):
            build_plan([])

    def test_missing_dep_rejected(self):
        from repro.backends.plan import ExperimentPlan, PlanNode

        nodes = [PlanNode(key="cell:0", kind="cell", deps=("compile",), index=0)]
        with pytest.raises(ExperimentError, match="missing"):
            ExperimentPlan(nodes, [])

    def test_cycle_rejected(self):
        from repro.backends.plan import ExperimentPlan, PlanNode

        nodes = [
            PlanNode(key="compile", kind="compile", deps=("reduce",)),
            PlanNode(key="reduce", kind="reduce", deps=("compile",)),
        ]
        with pytest.raises(ExperimentError, match="cycle"):
            ExperimentPlan(nodes, [])

    @given(
        picks=st.lists(st.integers(0, len(SPEC_POOL) - 1), min_size=1, max_size=5),
        rus=st.lists(st.integers(2, 10), min_size=1, max_size=3, unique=True),
        latencies=st.lists(
            st.integers(1_000, 8_000), min_size=1, max_size=2, unique=True
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_topological_order_respects_dependencies(self, picks, rus, latencies):
        """A cell is never scheduled before compile or its artifacts."""
        cells = [
            SweepCell(SPEC_POOL[p], n_rus, latency)
            for p in picks
            for n_rus in rus
            for latency in latencies
        ]
        plan = build_plan(cells)
        position = {node.key: i for i, node in enumerate(plan.topological_order())}
        assert len(position) == len(plan)
        for node in plan.nodes.values():
            for dep in node.deps:
                assert position[dep] < position[node.key]
        assert position["compile"] == 0
        assert position["reduce"] == len(plan) - 1
        # Dedup invariants: node counts match the distinct coordinates.
        skip_pairs = {
            (c.n_rus, c.reconfig_latency) for c in cells if c.spec.skip_events
        }
        assert len(plan.nodes_of_kind("mobility")) == len(skip_pairs)
        assert plan.counts()["cell"] == len(cells)


# ----------------------------------------------------------------------
# Work-stealing fault injection
# ----------------------------------------------------------------------
def _ws_session(workload, store, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("poll_s", 0.02)
    kwargs.setdefault("timeout_s", 300)
    backend = WorkStealingBackend(store, **kwargs)
    return Session(workload=workload, backend=backend)


def _claim_and_die(store_root: str, sweep_id: str, ttl: float) -> None:
    """Saboteur worker: claim one cell, then crash without completing it."""
    queue = CellQueue(ArtifactStore(store_root), sweep_id)
    queue.claim("saboteur", ttl, random.Random(0))
    os._exit(1)


class TestWorkStealingFaults:
    def test_crashed_worker_lease_reclaimed(self, small_workload, tmp_path):
        """A worker dying mid-cell loses its lease after the TTL and the
        sweep still completes: zero lost, zero duplicated cells."""
        store = ArtifactStore(tmp_path / "store")
        crashed = []

        def sabotage(queue):
            proc = multiprocessing.Process(
                target=_claim_and_die, args=(str(store.root), queue.sweep_id, 0.4)
            )
            proc.start()
            proc.join(30)
            crashed.append(proc.exitcode)

        baseline = Session(workload=small_workload).sweep(SPECS, ru_counts=(4,))
        session = _ws_session(
            small_workload, store, lease_ttl=0.4, on_published=sabotage
        )
        sweep = session.sweep(SPECS, ru_counts=(4,))
        assert crashed == [1]  # the saboteur really claimed and died
        assert _record_blobs(sweep.records) == _record_blobs(baseline.records)

    def test_corrupt_task_entry_is_republished(self, small_workload, tmp_path):
        """A torn task entry is evicted as a miss and the coordinator
        republishes it — the sweep completes, nothing crashes."""
        store = ArtifactStore(tmp_path / "store")
        corrupted = []

        def corrupt_first_task(queue):
            path = store._entry_path("task", queue.cell_key(0))
            path.write_text("{ this is not json")
            corrupted.append(str(path))

        baseline = Session(workload=small_workload).sweep(SPECS, ru_counts=(4,))
        session = _ws_session(small_workload, store, on_published=corrupt_first_task)
        sweep = session.sweep(SPECS, ru_counts=(4,))
        assert corrupted
        assert _record_blobs(sweep.records) == _record_blobs(baseline.records)

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        """Strict decode: garbage in the store is evicted, counted, gone."""
        store = ArtifactStore(tmp_path / "store")
        path = store._entry_path("task", "deadbeef")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        assert store.load("task", "deadbeef", decode_task) is None
        assert store.stats.corrupt_evicted >= 1
        assert not path.exists()

    def test_queue_garbage_collected_after_sweep(self, small_workload, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        session = _ws_session(small_workload, store)
        session.sweep(SPECS, ru_counts=(4,))
        counts = store.entry_counts()
        assert counts["sweep"] == counts["task"] == 0
        assert counts["lease"] == counts["result"] == 0
        assert active_sweeps(store) == []

    def test_external_daemon_worker_serves_sweep(self, small_workload, tmp_path):
        """workers=0: the coordinator only publishes; a ``repro worker``
        style daemon discovers the sweep through the store and runs it."""
        store = ArtifactStore(tmp_path / "store")
        daemon = multiprocessing.Process(
            target=run_worker,
            args=(str(store.root),),
            kwargs={"max_idle_s": 30, "poll_s": 0.02},
            daemon=True,
        )
        daemon.start()
        try:
            baseline = Session(workload=small_workload).sweep(SPECS, ru_counts=(4,))
            session = _ws_session(small_workload, store, workers=0, timeout_s=120)
            sweep = session.sweep(SPECS, ru_counts=(4,))
            assert _record_blobs(sweep.records) == _record_blobs(baseline.records)
        finally:
            daemon.terminate()
            daemon.join(10)

    def test_run_worker_once_on_empty_store(self, tmp_path):
        stats = run_worker(ArtifactStore(tmp_path / "store"), once=True)
        assert stats == {"completed": 0, "failed": 0, "sweeps": 0}

    def test_cell_error_reaches_coordinator(self, small_workload, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        session = _ws_session(small_workload, store)
        with pytest.raises(ExperimentError, match="boom-policy"):
            session.sweep([_boom_spec()], ru_counts=(4,))
        # The failed sweep's queue entries were cleaned up on the way out.
        assert active_sweeps(store) == []


# ----------------------------------------------------------------------
# The partition property: any k-worker split equals parallel=1
# ----------------------------------------------------------------------
def _drain_interleaved(queue, k: int, seed: int) -> None:
    """Round-robin k in-process workers over the queue until it drains."""
    from repro.backends.worker import _SweepContext

    ctx = _SweepContext(queue.store, queue, queue.meta())
    rngs = [random.Random(seed * 31 + w) for w in range(k)]
    progressed = True
    while progressed and not queue.finished():
        progressed = False
        for w in range(k):
            task = queue.claim(f"partition-{w}", 60.0, rngs[w])
            if task is not None:
                ctx.execute(task, f"partition-{w}")
                progressed = True


class TestPartitionProperty:
    @given(k=st.integers(1, 4), seed=st.integers(0, 10_000))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_partition_matches_serial(self, small_workload, k, seed):
        """However the cells are split across k workers (the split is
        driven by each worker's shuffled claim order), the collected
        records are exactly the ``parallel=1`` records."""
        baseline = Session(workload=small_workload).sweep(SPECS, ru_counts=(4,))
        tmp = tempfile.mkdtemp(prefix="repro-partition-")
        try:
            store = ArtifactStore(tmp)
            session = _ws_session(
                small_workload,
                store,
                workers=0,
                timeout_s=60,
                on_published=lambda q: _drain_interleaved(q, k, seed),
            )
            sweep = session.sweep(SPECS, ru_counts=(4,))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        assert _record_blobs(sweep.records) == _record_blobs(baseline.records)


# ----------------------------------------------------------------------
# Failure-path helpers (module level: specs cross process boundaries)
# ----------------------------------------------------------------------
def _boom_factory():
    raise RuntimeError("boom-policy refused to construct")


def _boom_spec():
    from repro.core.policy_spec import PolicySpec

    return PolicySpec(label="boom", policy_factory=_boom_factory)


class TestPoolRegression:
    def test_pool_rebuilt_after_batch_failure(self, workload):
        """Session drops the pool when a parallel batch fails, and the
        next sweep transparently rebuilds it."""
        session = Session(workload=workload)
        try:
            session.sweep(SPECS, ru_counts=(4,), parallel=2)
            assert session._pool is not None
            with pytest.raises(RuntimeError, match="boom-policy"):
                session.sweep([_boom_spec()], ru_counts=(4, 6), parallel=2)
            assert session._pool is None  # broken pool was discarded
            # Forget memoized records so the next sweep actually needs a
            # pool (a warm session would serve the repeat from memory).
            session.forget_records()
            sweep = session.sweep(SPECS, ru_counts=(4,), parallel=2)
            assert session._pool is not None  # rebuilt on demand
            assert len(sweep.records) == len(SPECS)
        finally:
            session.close()
