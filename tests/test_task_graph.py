"""Unit tests for repro.graphs.task_graph."""

import pytest

from repro.exceptions import (
    CycleError,
    DuplicateTaskError,
    GraphError,
    UnknownTaskError,
)
from repro.graphs.task import ConfigId, TaskSpec
from repro.graphs.task_graph import TaskGraph, validate_same_shape


def make_graph(edges=(), times=None, name="G"):
    times = times or {1: 10, 2: 20, 3: 30}
    return TaskGraph(name, [TaskSpec(n, t) for n, t in times.items()], edges)


class TestConstruction:
    def test_minimal(self):
        g = TaskGraph("G", [TaskSpec(1, 5)])
        assert len(g) == 1
        assert g.sources() == (1,)
        assert g.sinks() == (1,)

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph("", [TaskSpec(1, 5)])

    def test_no_tasks_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph("G", [])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DuplicateTaskError):
            TaskGraph("G", [TaskSpec(1, 5), TaskSpec(1, 6)])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(UnknownTaskError):
            make_graph(edges=[(1, 9)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            make_graph(edges=[(2, 2)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            make_graph(edges=[(1, 2), (2, 3), (3, 1)])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            make_graph(edges=[(1, 2), (2, 1)])

    def test_duplicate_edges_collapsed(self):
        g = make_graph(edges=[(1, 2), (1, 2)])
        assert len(g.edges) == 1


class TestQueries:
    def test_adjacency(self):
        g = make_graph(edges=[(1, 3), (2, 3)])
        assert g.predecessors(3) == (1, 2)
        assert g.successors(1) == (3,)
        assert g.predecessors(1) == ()
        assert g.sources() == (1, 2)
        assert g.sinks() == (3,)

    def test_unknown_node_queries_raise(self):
        g = make_graph()
        with pytest.raises(UnknownTaskError):
            g.task(99)
        with pytest.raises(UnknownTaskError):
            g.predecessors(99)
        with pytest.raises(UnknownTaskError):
            g.successors(99)
        with pytest.raises(UnknownTaskError):
            g.config_id(99)

    def test_contains_and_iter(self):
        g = make_graph(edges=[(1, 2)])
        assert 1 in g and 99 not in g
        assert [s.node_id for s in g] == list(g.topological_order())

    def test_config_ids(self):
        g = make_graph(name="APP")
        assert g.config_id(1) == ConfigId("APP", 1)
        assert len(g.config_ids()) == 3

    def test_topological_order_is_valid(self):
        g = make_graph(edges=[(3, 1), (1, 2)], times={1: 1, 2: 1, 3: 1})
        order = g.topological_order()
        assert order.index(3) < order.index(1) < order.index(2)

    def test_topological_order_deterministic_tiebreak(self):
        # No edges: pure id order.
        g = make_graph()
        assert g.topological_order() == (1, 2, 3)


class TestTiming:
    def test_chain_critical_path(self):
        g = make_graph(edges=[(1, 2), (2, 3)], times={1: 10, 2: 20, 3: 30})
        assert g.critical_path_length() == 60
        assert g.asap_start_times() == {1: 0, 2: 10, 3: 30}

    def test_parallel_critical_path(self):
        g = make_graph(times={1: 10, 2: 25, 3: 5})
        assert g.critical_path_length() == 25
        assert g.asap_start_times() == {1: 0, 2: 0, 3: 0}

    def test_diamond_critical_path(self):
        g = TaskGraph(
            "G",
            [TaskSpec(1, 10), TaskSpec(2, 5), TaskSpec(3, 20), TaskSpec(4, 1)],
            [(1, 2), (1, 3), (2, 4), (3, 4)],
        )
        assert g.critical_path_length() == 10 + 20 + 1

    def test_total_exec_time(self):
        g = make_graph()
        assert g.total_exec_time() == 60

    def test_depth_of(self):
        g = make_graph(edges=[(1, 2), (2, 3)])
        assert g.depth_of(1) == 0
        assert g.depth_of(3) == 2


class TestReconfigurationOrder:
    def test_chain_order(self):
        g = make_graph(edges=[(1, 2), (2, 3)])
        assert g.reconfiguration_order() == (1, 2, 3)

    def test_fork_orders_by_asap_then_id(self):
        g = TaskGraph(
            "G",
            [TaskSpec(1, 10), TaskSpec(2, 5), TaskSpec(3, 5)],
            [(1, 2), (1, 3)],
        )
        assert g.reconfiguration_order() == (1, 2, 3)

    def test_staggered_asap_order(self):
        # 1(10) -> 3 ; 2(4) -> 4 : ASAP starts 1:0, 2:0, 4:4, 3:10
        g = TaskGraph(
            "G",
            [TaskSpec(1, 10), TaskSpec(2, 4), TaskSpec(3, 1), TaskSpec(4, 1)],
            [(1, 3), (2, 4)],
        )
        assert g.reconfiguration_order() == (1, 2, 4, 3)


class TestDerivation:
    def test_renamed_changes_configs(self):
        g = make_graph(name="A")
        h = g.renamed("B")
        assert h.config_id(1) == ConfigId("B", 1)
        assert validate_same_shape(g, h)

    def test_with_exec_times(self):
        g = make_graph(edges=[(1, 2)])
        h = g.with_exec_times({2: 99})
        assert h.task(2).exec_time == 99
        assert h.task(1).exec_time == 10
        assert g.task(2).exec_time == 20

    def test_scaled(self):
        g = make_graph()
        h = g.scaled(2.0)
        assert h.task(1).exec_time == 20
        assert h.task(3).exec_time == 60

    def test_scaled_floors_at_one(self):
        g = make_graph(times={1: 1})
        assert g.scaled(0.001).task(1).exec_time == 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            make_graph().scaled(0)

    def test_equality_and_hash(self):
        a = make_graph(edges=[(1, 2)])
        b = make_graph(edges=[(1, 2)])
        c = make_graph(edges=[(1, 3)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_describe_contains_tasks(self):
        text = make_graph().describe()
        assert "critical path" in text
        assert "t1" in text
