"""Deeper execution-manager edge cases: prefetch modes, stalls, windows.

These complement test_manager.py with the subtler interactions between
cross-application prefetch, reuse-claim stalling and the Dynamic-List
window — the behaviours the calibration (DESIGN.md §3) pinned down.
"""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.policies.lfd import LocalLFDPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.graphs.builders import TaskGraphBuilder, chain_graph, fork_graph
from repro.sim.manager import ExecutionManager
from repro.sim.semantics import CrossAppPrefetch, ManagerSemantics
from repro.sim.simtime import ms
from repro.sim.simulator import simulate
from repro.sim.validation import validate_trace


def run(graphs, n_rus=4, latency=ms(4), advisor=None, semantics=None, **kw):
    manager = ExecutionManager(
        graphs=graphs,
        n_rus=n_rus,
        reconfig_latency=latency,
        advisor=advisor or PolicyAdvisor(LRUPolicy()),
        semantics=semantics or ManagerSemantics(),
        **kw,
    )
    trace = manager.run()
    validate_trace(trace, graphs)
    return trace


class TestFullPrefetchMode:
    def test_future_load_may_evict(self):
        # App A executes 50ms; under FULL prefetch, B's config evicts A's
        # finished task well before A completes.
        a = chain_graph("A", [ms(5), ms(50)])
        b = chain_graph("B", [ms(5)])
        trace = run(
            [a, b],
            n_rus=2,
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FULL, lookahead_apps=1
            ),
        )
        rec_b = next(r for r in trace.reconfigs if r.config.graph_name == "B")
        end_a = max(e.end for e in trace.executions_of_app(0))
        assert rec_b.end < end_a  # loaded while A still executing

    def test_claimed_future_task_protected_until_executed(self):
        # B's prefetched config must not be evicted by a later load.
        a = chain_graph("A", [ms(50)])
        b = chain_graph("B", [ms(5)])
        trace = run(
            [a, b, b],
            n_rus=2,
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FULL, lookahead_apps=2
            ),
        )
        # B loaded once, reused once.
        recs_b = [r for r in trace.reconfigs if r.config.graph_name == "B"]
        assert len(recs_b) == 1
        assert trace.n_reused_executions == 1


class TestStallOnLoadedFuture:
    def test_stalled_reuse_consumed_at_activation(self):
        g = chain_graph("G", [ms(10)])
        other = chain_graph("H", [ms(30)])
        trace = run(
            [g, other, g],
            n_rus=4,
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FREE_RU_ONLY,
                stall_on_loaded_future=True,
                lookahead_apps=2,
            ),
        )
        # Third app reuses G's config exactly at its activation time.
        reuse = next(r for r in trace.reuses if r.app_index == 2)
        end_of_h = max(e.end for e in trace.executions_of_app(1))
        assert reuse.time == end_of_h

    def test_no_stall_claims_early(self):
        g = chain_graph("G", [ms(10)])
        other = chain_graph("H", [ms(30)])
        trace = run(
            [g, other, g],
            n_rus=4,
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FREE_RU_ONLY,
                stall_on_loaded_future=False,
                lookahead_apps=2,
            ),
        )
        reuse = next(r for r in trace.reuses if r.app_index == 2)
        end_of_h = max(e.end for e in trace.executions_of_app(1))
        assert reuse.time < end_of_h  # claimed while H still executing


class TestWindowVisibility:
    def test_window_bounds_prefetch_depth(self):
        a = chain_graph("A", [ms(60)])
        b = chain_graph("B", [ms(5)])
        c = chain_graph("C", [ms(5)])
        trace = run(
            [a, b, c],
            n_rus=4,
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FREE_RU_ONLY, lookahead_apps=1
            ),
        )
        rec_b = next(r for r in trace.reconfigs if r.config.graph_name == "B")
        rec_c = next(r for r in trace.reconfigs if r.config.graph_name == "C")
        end_a = max(e.end for e in trace.executions_of_app(0))
        assert rec_b.start < end_a     # within window: prefetched
        assert rec_c.start >= end_a    # beyond window: waits

    def test_wider_window_prefetches_deeper(self):
        a = chain_graph("A", [ms(60)])
        b = chain_graph("B", [ms(5)])
        c = chain_graph("C", [ms(5)])
        trace = run(
            [a, b, c],
            n_rus=4,
            semantics=ManagerSemantics(
                cross_app_prefetch=CrossAppPrefetch.FREE_RU_ONLY, lookahead_apps=2
            ),
        )
        rec_c = next(r for r in trace.reconfigs if r.config.graph_name == "C")
        end_a = max(e.end for e in trace.executions_of_app(0))
        assert rec_c.start < end_a


class TestSameConfigAcrossNonAdjacentApps:
    def test_claimed_config_blocks_second_claim_until_freed(self):
        # The same app type three times with one RU-hungry spacer: the
        # sequence head for the third instance must wait for the claim of
        # the first to clear (exercises the claimed-config wait path).
        g = chain_graph("G", [ms(10), ms(10)])
        trace = run(
            [g, g, g],
            n_rus=4,
            semantics=ManagerSemantics(lookahead_apps=4),
        )
        assert trace.n_reconfigurations == 2      # loaded once per config
        assert trace.n_reused_executions == 4     # both tasks, twice


class TestSkipInteractions:
    def test_skip_records_victim_config(self):
        from repro.core.mobility import MobilityCalculator
        from repro.experiments.motivational import fig3_sequence

        apps = fig3_sequence()
        mobility = MobilityCalculator(4, ms(4)).compute_tables(apps)
        trace = run(
            apps,
            n_rus=4,
            advisor=PolicyAdvisor(LocalLFDPolicy(), skip_events=True),
            semantics=ManagerSemantics(lookahead_apps=1),
            mobility_tables=mobility,
        )
        assert trace.skips, "the Fig. 3 scenario must skip at least once"
        skip = trace.skips[0]
        # The spared victim is TG1's task 1 (reused later).
        assert skip.victim_config.node_id == 1
        assert skip.skipped_events_after == 1

    def test_skip_records_policy_selected_victim_not_first_dl_candidate(self):
        """Regression: Skip.victim_config used to record the first
        DL-resident candidate, not the victim the policy actually chose.
        A pick-the-last-candidate policy exposes the difference: both RUs
        hold DL-resident G0 configurations, the policy selects G0 task 2
        (the last candidate), and the trace must say so."""
        from repro.core.policies.base import ReplacementPolicy
        from repro.graphs.builders import independent_tasks_graph

        class PickLast(ReplacementPolicy):
            name = "pick-last"

            def select_victim(self, ctx):
                return ctx.candidates[-1].index

            def describe(self):
                return "pick-last"

        g0 = independent_tasks_graph("G0", [ms(10), ms(10)])
        h = chain_graph("H", [ms(10), ms(10)])
        trace = run(
            [g0, h, g0],
            n_rus=3,
            advisor=PolicyAdvisor(PickLast(), skip_events=True),
            semantics=ManagerSemantics(lookahead_apps=2),
            mobility_tables={"H": {1: 0, 2: 1}},
        )
        assert len(trace.skips) == 1
        skip = trace.skips[0]
        # The policy chose the *last* candidate (G0 task 2); the first
        # DL-resident candidate (G0 task 1) would be the old wrong answer.
        assert skip.victim_config.graph_name == "G0"
        assert skip.victim_config.node_id == 2

    def test_skip_without_victim_index_falls_back_to_heuristic(self):
        """Advisors that skip without naming a victim keep the old
        best-effort recording (first DL-resident candidate)."""
        from repro.sim.interface import Decision, ReplacementAdvisor

        class AnonymousSkipper(ReplacementAdvisor):
            def __init__(self):
                self.skipped = False

            def decide(self, ctx):
                if not self.skipped and len(ctx.candidates) > 1:
                    self.skipped = True
                    return Decision.skip_event()  # no victim reported
                return Decision.load(ctx.candidates[0].index)

        from repro.graphs.builders import independent_tasks_graph

        g0 = independent_tasks_graph("G0", [ms(10), ms(10)])
        h = chain_graph("H", [ms(10), ms(10)])
        trace = run(
            [g0, h, g0],
            n_rus=3,
            advisor=AnonymousSkipper(),
            semantics=ManagerSemantics(lookahead_apps=2),
            mobility_tables={"H": {1: 0, 2: 1}},
        )
        assert len(trace.skips) == 1
        assert trace.skips[0].victim_config.graph_name == "G0"
        assert trace.skips[0].victim_config.node_id == 1

    def test_mobility_tables_for_unknown_graph_default_zero(self):
        g = chain_graph("G", [ms(5)] * 5)
        trace = run(
            [g, g],
            n_rus=2,
            advisor=PolicyAdvisor(LocalLFDPolicy(), skip_events=True),
            semantics=ManagerSemantics(lookahead_apps=1),
            mobility_tables={"OTHER": {1: 5}},  # no entry for "G"
        )
        assert trace.n_skips == 0  # zero mobility -> never skips


class TestDegenerateDevices:
    def test_single_ru_chain_apps(self):
        g = chain_graph("G", [ms(5), ms(5), ms(5)])
        trace = run([g, g], n_rus=1)
        # One RU: every task serially loaded+executed; reuse impossible
        # (each load evicts the only slot) except... last task stays.
        assert trace.n_executions == 6
        validate_trace(trace, [g, g])

    def test_single_ru_single_task_app_reuses(self):
        g = chain_graph("G", [ms(5)])
        trace = run([g, g, g], n_rus=1)
        assert trace.n_reconfigurations == 1
        assert trace.n_reused_executions == 2

    def test_many_rus_no_evictions(self):
        g = fork_graph("G", ms(2), [ms(3), ms(3)])
        trace = run([g, g], n_rus=10)
        assert not trace.evictions
        assert trace.n_reused_executions == 3


class TestIdleSkipStallRecovery:
    """Direct pinning of ``_break_idle_skip_stall`` (previously reachable
    only through multi-controller scenarios and pinned indirectly)."""

    @staticmethod
    def _bounded_skipper(n_skips):
        from repro.sim.interface import Decision, ReplacementAdvisor

        class BoundedSkipper(ReplacementAdvisor):
            """Skips until ``skipped_events`` reaches ``n_skips``."""

            def decide(self, ctx):
                if ctx.skipped_events < n_skips:
                    return Decision.skip_event(ctx.candidates[0].index)
                return Decision.load(ctx.candidates[0].index)

        return BoundedSkipper()

    @staticmethod
    def _single_task_apps():
        # Three single-task apps on 2 RUs: the third app's load needs an
        # eviction decided when the queue is already empty (nothing in
        # flight), which is exactly the idle-skip stall.
        return [
            chain_graph("A", [ms(1)]),
            chain_graph("B", [ms(1)]),
            chain_graph("C", [ms(1)]),
        ]

    def test_bounded_skipper_recovers_and_completes(self):
        trace = run(
            self._single_task_apps(),
            n_rus=2,
            advisor=self._bounded_skipper(2),
        )
        # Both skips were emitted and counted before the load proceeded.
        assert trace.n_skips == 2
        assert [s.skipped_events_after for s in trace.skips] == [1, 2]
        assert trace.n_executions == 3
        # The delayed load still happened (one eviction for app C).
        assert len(trace.evictions) == 1

    def test_unbounded_skipper_raises_instead_of_hanging(self):
        from repro.exceptions import SimulationError
        from repro.sim.interface import Decision, ReplacementAdvisor

        class AlwaysSkip(ReplacementAdvisor):
            def decide(self, ctx):
                return Decision.skip_event(ctx.candidates[0].index)

        with pytest.raises(SimulationError, match="keeps skipping"):
            run(self._single_task_apps(), n_rus=2, advisor=AlwaysSkip())

    def test_recovery_preserves_event_stream_equivalence(self):
        # The recovery path emits ordinary Skip events: a recorded stream
        # through the object path matches the scalar-path trace counters.
        from repro.sim.tracing import TraceSink

        class Recorder(TraceSink):
            def __init__(self):
                self.events = []

            def on_event(self, event):
                self.events.append(event)

        graphs = self._single_task_apps()
        scalar = run(graphs, n_rus=2, advisor=self._bounded_skipper(1))
        recorder = Recorder()
        object_path = run(
            graphs,
            n_rus=2,
            advisor=self._bounded_skipper(1),
            extra_sinks=(recorder,),
        )
        assert scalar.summary() == object_path.summary()
        assert sum(1 for e in recorder.events if type(e).__name__ == "Skip") == 1
