"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.policies.lfd import LFDPolicy, LocalLFDPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.experiments.motivational import (
    fig2_sequence,
    fig2_task_graph_1,
    fig2_task_graph_2,
    fig3_sequence,
    fig3_task_graph_1,
    fig3_task_graph_2,
)
from repro.graphs.builders import TaskGraphBuilder, chain_graph, fork_join_graph
from repro.graphs.multimedia import benchmark_suite
from repro.sim.semantics import ManagerSemantics
from repro.sim.simtime import ms


@pytest.fixture
def tiny_chain():
    """Three-task chain with 1/2/3 ms tasks."""
    return chain_graph("CHAIN", [ms(1), ms(2), ms(3)])


@pytest.fixture
def tiny_fork_join():
    """Classic diamond: 1 -> {2,3} -> 4."""
    return fork_join_graph("DIAMOND", ms(2), [ms(3), ms(4)], ms(1))


@pytest.fixture
def fig2_graphs():
    return fig2_task_graph_1(), fig2_task_graph_2()


@pytest.fixture
def fig2_apps():
    return fig2_sequence()


@pytest.fixture
def fig3_graphs():
    return fig3_task_graph_1(), fig3_task_graph_2()


@pytest.fixture
def fig3_apps():
    return fig3_sequence()


@pytest.fixture
def multimedia_apps():
    return benchmark_suite()


@pytest.fixture
def lru_advisor():
    return PolicyAdvisor(LRUPolicy())


@pytest.fixture
def local_lfd_advisor():
    return PolicyAdvisor(LocalLFDPolicy())


@pytest.fixture
def lfd_advisor():
    return PolicyAdvisor(LFDPolicy())


@pytest.fixture
def oracle_semantics():
    return ManagerSemantics(provide_oracle=True)


@pytest.fixture
def window1_semantics():
    return ManagerSemantics(lookahead_apps=1)
