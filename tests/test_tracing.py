"""The streaming trace subsystem: sinks, modes, JSONL round-trips.

Covers the event-bus acceptance criteria: the FullTrace sink reconstructs
the seed's record lists exactly (byte-identical ``summary()``), the
aggregate sink reports the same counters in O(1) memory, the JSONL writer
round-trips losslessly, and the trace modes thread through ``Session``
(including under the process pool) and the hooks protocol.
"""

import json

import pytest

from repro.core.policy_spec import lfd_spec, local_lfd_spec, lru_spec
from repro.exceptions import ExperimentError, SimulationError
from repro.session import Session, SessionHooks
from repro.sim.simulator import run_simulation
from repro.sim.tracing import (
    AggregateTrace,
    AppActivated,
    EVENT_TYPES,
    ExecStart,
    FullTrace,
    JsonlTraceWriter,
    ReconfigStart,
    Reuse,
    RunEnd,
    RunStart,
    TraceSink,
    event_from_dict,
    event_to_dict,
    read_trace_events,
    replay_events,
    resolve_trace_mode,
    trace_from_jsonl,
    trace_memory_bytes,
)
from repro.sim.trace import ExecRecord, Trace
from repro.workloads.scenarios import make_scenario

#: ``json.dumps(trace.summary())`` of the seed implementation for
#: (paper-eval length=25, 4 RUs): captured at commit 2a1760c semantics.
#: The FullTrace-reconstructed path must reproduce these bytes exactly.
SEED_SUMMARY_LRU = (
    '{"n_rus": 4, "reconfig_latency_us": 4000, "makespan_us": 1847000, '
    '"executions": 124, "reused": 15, "reuse_rate": 0.121, '
    '"reconfigurations": 109, "evictions": 105, "skips": 0}'
)
SEED_SUMMARY_SKIP = (
    '{"n_rus": 4, "reconfig_latency_us": 4000, "makespan_us": 1907000, '
    '"executions": 124, "reused": 38, "reuse_rate": 0.3065, '
    '"reconfigurations": 86, "evictions": 82, "skips": 28}'
)


@pytest.fixture(scope="module")
def workload():
    return make_scenario("paper-eval", length=25)


def _run(workload, spec, **kwargs):
    return Session(workload=workload).run(spec, **kwargs)


# ----------------------------------------------------------------------
# FullTrace: seed-path fidelity
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_factory,expected",
    [
        (lru_spec, SEED_SUMMARY_LRU),
        (lambda: local_lfd_spec(1, skip_events=True), SEED_SUMMARY_SKIP),
    ],
    ids=["lru", "local-lfd-skip"],
)
def test_fulltrace_summary_byte_identical_to_seed(workload, spec_factory, expected):
    result = _run(workload, spec_factory())
    assert isinstance(result.trace, Trace)
    assert json.dumps(result.trace.summary()) == expected


def test_aggregate_summary_byte_identical_to_seed(workload):
    result = _run(workload, lru_spec(), trace="aggregate")
    assert isinstance(result.trace, AggregateTrace)
    assert json.dumps(result.trace.summary()) == SEED_SUMMARY_LRU


# ----------------------------------------------------------------------
# Aggregate vs full equality on paper-eval
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_factory",
    [lru_spec, lfd_spec, lambda: local_lfd_spec(1, skip_events=True)],
    ids=["lru", "lfd", "local-lfd-skip"],
)
def test_aggregate_matches_full_counters(workload, spec_factory):
    full = _run(workload, spec_factory(), trace="full")
    agg = _run(workload, spec_factory(), trace="aggregate")
    assert agg.trace.summary() == full.trace.summary()
    assert agg.makespan_us == full.makespan_us
    assert agg.trace.busy_time_per_ru() == full.trace.busy_time_per_ru()
    assert (
        agg.trace.total_reconfiguration_time()
        == full.trace.total_reconfiguration_time()
    )
    assert agg.trace.n_apps_completed == workload.n_apps


# ----------------------------------------------------------------------
# JSONL: write -> parse -> replay round-trip
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path, workload):
    path = tmp_path / "events.jsonl"
    spec = local_lfd_spec(1, skip_events=True)
    streamed = _run(workload, spec, trace=str(path))
    full = _run(workload, spec, trace="full")

    # The streamed run keeps aggregate counters in memory...
    assert isinstance(streamed.trace, AggregateTrace)
    assert streamed.trace.summary() == full.trace.summary()

    # ...and the file replays into the *exact* full trace: same records,
    # same order, byte-identical summary.
    replayed = trace_from_jsonl(path)
    assert json.dumps(replayed.summary()) == json.dumps(full.trace.summary())
    assert replayed.executions == full.trace.executions
    assert replayed.reconfigs == full.trace.reconfigs
    assert replayed.reuses == full.trace.reuses
    assert replayed.evictions == full.trace.evictions
    assert replayed.skips == full.trace.skips
    assert replayed.app_completion_times == full.trace.app_completion_times


def test_jsonl_writer_accepts_open_text_stream(tmp_path, workload):
    """An already-open stream gets the same bytes as a path target."""
    import io

    path = tmp_path / "events.jsonl"
    spec = local_lfd_spec(1)
    _run(workload, spec, trace=str(path))

    buffer = io.StringIO()
    _run(workload, spec, trace=buffer)
    assert buffer.getvalue() == path.read_text(encoding="utf-8")
    # Caller-supplied streams are flushed, never closed.
    assert not buffer.closed
    replayed = trace_from_jsonl(buffer.getvalue().splitlines())
    assert replayed.summary() == trace_from_jsonl(path).summary()


def test_jsonl_writer_accepts_open_binary_stream(tmp_path, workload):
    import io

    path = tmp_path / "events.jsonl"
    spec = local_lfd_spec(1)
    _run(workload, spec, trace=str(path))

    buffer = io.BytesIO()
    _run(workload, spec, trace=buffer)
    assert buffer.getvalue() == path.read_bytes()
    assert not buffer.closed

    with (tmp_path / "direct.jsonl").open("wb") as fh:
        _run(workload, spec, trace=fh)
        assert not fh.closed
    assert (tmp_path / "direct.jsonl").read_bytes() == path.read_bytes()


def test_jsonl_writer_stdout_marker(capsys, workload):
    """``trace="-"`` streams the event log to standard output."""
    result = _run(workload, local_lfd_spec(1), trace="-")
    captured = capsys.readouterr().out
    lines = [line for line in captured.splitlines() if line]
    assert json.loads(lines[0])["event"] == "RunStart"
    assert json.loads(lines[-1])["event"] == "RunEnd"
    replayed = trace_from_jsonl(lines)
    assert replayed.summary() == result.trace.summary()


def test_read_trace_events_accepts_streams_and_lines(tmp_path, workload):
    path = tmp_path / "events.jsonl"
    _run(workload, local_lfd_spec(1), trace=str(path))
    from_path = list(read_trace_events(path))
    with path.open("r", encoding="utf-8") as fh:
        from_stream = list(read_trace_events(fh))
    from_lines = list(read_trace_events(path.read_text().splitlines()))
    from_bytes = list(read_trace_events(path.read_bytes().splitlines()))
    assert from_path == from_stream == from_lines == from_bytes


def test_jsonl_stream_ordering_contract(tmp_path, workload):
    path = tmp_path / "events.jsonl"
    _run(workload, lru_spec(), trace=str(path))
    events = list(read_trace_events(path))
    assert isinstance(events[0], RunStart)
    assert isinstance(events[-1], RunEnd)
    assert all(a.time <= b.time for a, b in zip(events, events[1:]))
    # The first activation is app 0 at t=0.
    first_act = next(e for e in events if isinstance(e, AppActivated))
    assert (first_act.app_index, first_act.time) == (0, 0)


def test_event_dict_round_trip_all_types(tmp_path, workload):
    path = tmp_path / "events.jsonl"
    _run(workload, local_lfd_spec(1, skip_events=True), trace=str(path))
    events = list(read_trace_events(path))
    # A skip-enabled paper-eval run exercises every event type.
    assert {type(e) for e in events} == set(EVENT_TYPES)
    for event in events:
        assert event_from_dict(event_to_dict(event)) == event


def test_event_from_dict_rejects_garbage():
    with pytest.raises(SimulationError, match="unknown trace event"):
        event_from_dict({"event": "Nope", "time": 0})
    with pytest.raises(SimulationError, match="malformed"):
        event_from_dict({"event": "Reuse", "time": 0})


def test_closed_writer_rejects_events(tmp_path):
    writer = JsonlTraceWriter(tmp_path / "x.jsonl")
    writer.close()
    with pytest.raises(SimulationError, match="closed"):
        writer.on_event(RunEnd(time=0))
    writer.close()  # idempotent


# ----------------------------------------------------------------------
# Mode resolution and threading through Session / the process pool
# ----------------------------------------------------------------------
def test_invalid_trace_mode_raises(workload):
    with pytest.raises(SimulationError, match="invalid trace mode"):
        resolve_trace_mode("bogus")
    # Typos must not silently become output files.
    with pytest.raises(SimulationError, match="invalid trace mode"):
        run_simulation(
            workload.apps,
            n_rus=4,
            reconfig_latency=4000,
            advisor=lru_spec().make_advisor(),
            ideal_makespan_us=0,
            trace="FULL",
        )


def test_sweep_rejects_jsonl_path(tmp_path, workload):
    session = Session(workload=workload, trace=str(tmp_path / "t.jsonl"))
    with pytest.raises(ExperimentError, match="only supported for"):
        session.sweep([lru_spec(), lfd_spec()], ru_counts=(4,))


def test_aggregate_sweep_matches_full_sweep_under_pool(workload):
    """The acceptance leg: Session(trace='aggregate') with parallel=2."""
    specs = [lru_spec(), local_lfd_spec(1, skip_events=True)]
    full = Session(workload=workload).sweep(specs, ru_counts=(4, 6))
    agg = Session(workload=workload, trace="aggregate").sweep(
        specs, ru_counts=(4, 6), parallel=2
    )
    assert [r.__dict__ for r in agg.records] == [r.__dict__ for r in full.records]


def test_session_run_trace_override(workload):
    session = Session(workload=workload, trace="aggregate")
    assert isinstance(session.run(lru_spec()).trace, AggregateTrace)
    assert isinstance(session.run(lru_spec(), trace="full").trace, Trace)


# ----------------------------------------------------------------------
# Hooks attach extra sinks
# ----------------------------------------------------------------------
class _CountingSink(TraceSink):
    def __init__(self):
        self.n_events = 0
        self.closed = False

    def on_event(self, event):
        self.n_events += 1

    def close(self):
        self.closed = True


class _SinkHook(SessionHooks):
    def __init__(self):
        self.sinks = []

    def trace_sinks(self, cell):
        sink = _CountingSink()
        self.sinks.append(sink)
        return (sink,)


def test_hook_sinks_observe_the_stream(workload):
    hook = _SinkHook()
    session = Session(workload=workload, hooks=(hook,), trace="aggregate")
    result = session.run(lru_spec())
    (sink,) = hook.sinks
    assert sink.closed
    # At least RunStart/RunEnd plus one event per execution and reconfig.
    assert sink.n_events >= 2 + result.trace.n_executions
    # Sequential sweeps honour hook sinks too, one fresh sink per cell.
    session.sweep([lru_spec(), lfd_spec()], ru_counts=(4,))
    assert len(hook.sinks) == 3
    assert all(s.closed and s.n_events for s in hook.sinks)


def test_sinks_closed_even_when_a_sink_raises(tmp_path, workload):
    class _Bomb(TraceSink):
        def on_event(self, event):
            if isinstance(event, ExecStart):
                raise RuntimeError("boom")

    path = tmp_path / "partial.jsonl"
    with pytest.raises(RuntimeError, match="boom"):
        run_simulation(
            workload.apps,
            n_rus=4,
            reconfig_latency=4000,
            advisor=lru_spec().make_advisor(),
            ideal_makespan_us=0,
            trace=str(path),
            extra_sinks=(_Bomb(),),
        )
    # The writer was closed (flushed) despite the abort: the partial
    # stream parses cleanly up to the failure point.
    events = list(read_trace_events(path))
    assert isinstance(events[0], RunStart)
    assert any(isinstance(e, (ReconfigStart, Reuse)) for e in events)


# ----------------------------------------------------------------------
# O(1) aggregate memory and the huge-stream scenario
# ----------------------------------------------------------------------
def test_aggregate_memory_is_flat_in_workload_length():
    short = make_scenario("huge-stream", length=20)
    long = make_scenario("huge-stream", length=200)
    sizes = {}
    for wl in (short, long):
        result = Session(workload=wl, trace="aggregate").run(lru_spec())
        sizes[wl.n_apps] = trace_memory_bytes(result.trace)
    assert sizes[20] == sizes[200]

    full = Session(workload=long, trace="full").run(lru_spec())
    assert trace_memory_bytes(full.trace) > 50 * sizes[200]


def test_huge_stream_scenario_defaults():
    wl = make_scenario("huge-stream", length=30)
    assert wl.name == "huge-stream-30"
    assert wl.n_apps == 30
    # Same catalog/sampling as paper-eval: identical app sequence.
    paper = make_scenario("paper-eval", length=30)
    assert [g.name for g in wl.apps] == [g.name for g in paper.apps]


# ----------------------------------------------------------------------
# Trace derived-value caching (append-only invalidation)
# ----------------------------------------------------------------------
def test_trace_makespan_and_busy_cache_invalidate_on_append():
    trace = Trace(n_rus=2, reconfig_latency=100)
    assert trace.makespan == 0
    trace.executions.append(
        ExecRecord(ru=0, config=("A", 0), app_index=0, start=0, end=50, reused=False)
    )
    assert trace.makespan == 50
    assert trace.busy_time_per_ru() == {0: 50, 1: 0}
    # Cached: repeated access returns the same value...
    assert trace.makespan == 50
    # ...and an append invalidates (the key is len(executions)).
    trace.executions.append(
        ExecRecord(ru=1, config=("A", 1), app_index=0, start=50, end=120, reused=True)
    )
    assert trace.makespan == 120
    assert trace.busy_time_per_ru() == {0: 50, 1: 70}
    # The returned dict is a copy; mutating it must not poison the cache.
    trace.busy_time_per_ru()[0] = 999
    assert trace.busy_time_per_ru() == {0: 50, 1: 70}


def test_fulltrace_before_runstart_raises():
    with pytest.raises(SimulationError, match="RunStart"):
        FullTrace().view()


def test_replay_into_multiple_sinks(tmp_path, workload):
    path = tmp_path / "events.jsonl"
    _run(workload, lru_spec(), trace=str(path))
    full_sink, agg_sink = replay_events(
        read_trace_events(path), FullTrace(), AggregateTrace()
    )
    assert agg_sink.summary() == full_sink.view().summary()
