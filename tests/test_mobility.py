"""Tests for the design-time mobility calculation (Fig. 6 / Fig. 7)."""

import pytest

from repro.core.mobility import MobilityCalculator, PurelyRuntimeMobilityAdvisor
from repro.core.policies.classic import LRUPolicy
from repro.core.policies.extended import LFUPolicy, LRUKPolicy
from repro.core.policies.lfd import LocalLFDPolicy
from repro.experiments.motivational import fig3_task_graph_2
from repro.graphs.builders import chain_graph, fork_graph
from repro.sim.simtime import ms


class TestReferenceSchedule:
    def test_fig7_reference_is_30ms(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        assert calc.reference_makespan(fig3_task_graph_2()) == ms(30)

    def test_zero_delay_equals_reference(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        g = chain_graph("G", [ms(10), ms(10)])
        assert calc.delayed_makespan(g, 2, 0) == calc.reference_makespan(g)

    def test_infeasible_delay_reports_infinite(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        g = chain_graph("G", [ms(10)])
        # Delaying the only task by many events: no events ever arrive.
        assert calc.delayed_makespan(g, 1, 50) >= 2**62


class TestFig7Mobilities:
    """The paper's worked example, asserted number by number."""

    @pytest.fixture(scope="class")
    def calc(self):
        return MobilityCalculator(n_rus=4, reconfig_latency=ms(4))

    @pytest.fixture(scope="class")
    def graph(self):
        return fig3_task_graph_2()

    def test_delay_task5_costs_6ms(self, calc, graph):
        assert calc.delayed_makespan(graph, 5, 1) == ms(36)

    def test_delay_task6_costs_2ms(self, calc, graph):
        assert calc.delayed_makespan(graph, 6, 1) == ms(32)

    def test_delay_task7_once_is_free(self, calc, graph):
        assert calc.delayed_makespan(graph, 7, 1) == ms(30)

    def test_delay_task7_twice_costs_2ms(self, calc, graph):
        assert calc.delayed_makespan(graph, 7, 2) == ms(32)

    def test_computed_mobilities_match_paper(self, calc, graph):
        result = calc.compute(graph)
        assert dict(result.mobilities) == {4: 0, 5: 0, 6: 0, 7: 1}
        assert result.reference_makespan_us == ms(30)
        assert result.design_time_s > 0


class TestMobilityProperties:
    def test_first_task_always_zero(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        g = chain_graph("G", [ms(5), ms(5), ms(5)])
        result = calc.compute(g)
        first = g.reconfiguration_order()[0]
        assert result.mobilities[first] == 0

    def test_long_head_chain_has_zero_tail_mobility(self):
        # 1(100ms) -> 2(1ms): the only event after end_rec1 is end_exec1 at
        # t=104, so delaying rec2 exposes its full latency; mobility 0.
        calc = MobilityCalculator(n_rus=2, reconfig_latency=ms(4))
        g = chain_graph("G", [ms(100), ms(1)])
        result = calc.compute(g)
        assert result.mobilities[2] == 0

    def test_fig7_task7_has_positive_mobility(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        assert calc.compute(fig3_task_graph_2()).mobilities[7] == 1

    def test_compute_is_deterministic(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        g = fig3_task_graph_2()
        assert calc.compute(g).mobilities == calc.compute(g).mobilities

    def test_tables_deduplicate_by_name(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        g = chain_graph("G", [ms(5), ms(5)])
        tables = calc.compute_tables([g, g, g])
        assert set(tables) == {"G"}

    def test_max_mobility_cap_respected(self):
        calc = MobilityCalculator(n_rus=2, reconfig_latency=ms(4), max_mobility=1)
        g = chain_graph("G", [ms(100), ms(1)])
        assert calc.compute(g).mobilities[2] <= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MobilityCalculator(n_rus=0, reconfig_latency=ms(4))
        with pytest.raises(ValueError):
            MobilityCalculator(n_rus=4, reconfig_latency=-1)


class TestMobilityInvariants:
    def test_delay_within_mobility_never_increases_makespan(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        for graph in (fig3_task_graph_2(), fork_graph("F", ms(20), [ms(5), ms(6), ms(7)])):
            result = calc.compute(graph)
            ref = result.reference_makespan_us
            for node, mob in result.mobilities.items():
                for d in range(1, mob + 1):
                    assert calc.delayed_makespan(graph, node, d) <= ref

    def test_delay_beyond_mobility_increases_makespan(self):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=ms(4))
        graph = fig3_task_graph_2()
        result = calc.compute(graph)
        ref = result.reference_makespan_us
        for node, mob in result.mobilities.items():
            if node == graph.reconfiguration_order()[0]:
                continue
            assert calc.delayed_makespan(graph, node, mob + 1) > ref


class TestPurelyRuntimeStatefulEquivalence:
    """Regression: the purely-run-time comparator used to swallow the
    manager's bookkeeping notifications, so stateful policies (LFU, LRU,
    LRU-K) decided on stale state and the "functionally identical"
    comparison silently wasn't.  LFU demonstrably diverged on this very
    workload before the fix."""

    @pytest.mark.parametrize(
        "policy_factory",
        [
            LRUPolicy,
            LFUPolicy,
            lambda: LRUKPolicy(k=2),
        ],
        ids=["lru", "lfu", "lru-2"],
    )
    def test_stateful_policy_matches_policy_advisor_with_table(self, policy_factory):
        from repro.core.replacement_module import PolicyAdvisor
        from repro.sim.semantics import ManagerSemantics
        from repro.sim.simulator import run_simulation
        from repro.workloads.scenarios import make_scenario

        workload = make_scenario("paper-eval", length=30)
        graphs_by_name = {g.name: g for g in workload.distinct_graphs()}
        tables = MobilityCalculator(
            workload.n_rus, workload.reconfig_latency
        ).compute_tables(workload.distinct_graphs())
        semantics = ManagerSemantics(lookahead_apps=1)

        hybrid = run_simulation(
            workload.apps,
            workload.n_rus,
            workload.reconfig_latency,
            PolicyAdvisor(policy_factory(), skip_events=True),
            semantics,
            mobility_tables=tables,
        )
        runtime = run_simulation(
            workload.apps,
            workload.n_rus,
            workload.reconfig_latency,
            PurelyRuntimeMobilityAdvisor(
                policy=policy_factory(),
                graphs_by_name=graphs_by_name,
                n_rus=workload.n_rus,
                reconfig_latency=workload.reconfig_latency,
                semantics=semantics,
            ),
            semantics,
        )
        assert runtime.makespan_us == hybrid.makespan_us
        assert runtime.reuse_pct == hybrid.reuse_pct
        assert runtime.trace.n_skips == hybrid.trace.n_skips
        assert runtime.trace.evictions == hybrid.trace.evictions
        assert runtime.trace.skips == hybrid.trace.skips


class TestPurelyRuntimeAdvisor:
    def test_same_decisions_as_hybrid(self):
        """The purely-run-time comparator must be functionally identical."""
        from repro.core.replacement_module import PolicyAdvisor
        from repro.experiments.hybrid_speedup import _skip_exercising_context

        graph = fig3_task_graph_2()
        node = graph.reconfiguration_order()[-1]  # task 7, mobility 1
        ctx = _skip_exercising_context(graph.name, node)
        hybrid = PolicyAdvisor(LocalLFDPolicy(), skip_events=True)
        runtime = PurelyRuntimeMobilityAdvisor(
            policy=LocalLFDPolicy(),
            graphs_by_name={graph.name: graph},
            n_rus=4,
            reconfig_latency=ms(4),
        )
        assert hybrid.decide(ctx).skip == runtime.decide(ctx).skip

    def test_reset_clears_counter(self):
        graph = fig3_task_graph_2()
        advisor = PurelyRuntimeMobilityAdvisor(
            policy=LocalLFDPolicy(),
            graphs_by_name={graph.name: graph},
            n_rus=4,
            reconfig_latency=ms(4),
        )
        advisor._cacheless_decisions = 5
        advisor.reset()
        assert advisor._cacheless_decisions == 0
