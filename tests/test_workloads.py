"""Tests for workload generation and scenarios."""

import pytest

from repro.exceptions import WorkloadError
from repro.graphs.multimedia import benchmark_suite
from repro.workloads.scenarios import (
    PAPER_SEQUENCE_LENGTH,
    adversarial_round_robin_workload,
    available_scenarios,
    bursty_workload,
    make_scenario,
    paper_evaluation_workload,
    quick_workload,
)
from repro.workloads.sequence import (
    Workload,
    bursty_sequence,
    random_sequence,
    round_robin_sequence,
    weighted_sequence,
)


class TestRandomSequence:
    def test_length(self):
        seq = random_sequence(benchmark_suite(), 500, seed=1)
        assert len(seq) == 500

    def test_deterministic(self):
        a = random_sequence(benchmark_suite(), 100, seed=7)
        b = random_sequence(benchmark_suite(), 100, seed=7)
        assert [g.name for g in a] == [g.name for g in b]

    def test_seed_changes_sequence(self):
        a = random_sequence(benchmark_suite(), 100, seed=1)
        b = random_sequence(benchmark_suite(), 100, seed=2)
        assert [g.name for g in a] != [g.name for g in b]

    def test_all_apps_appear_in_long_sequences(self):
        names = {g.name for g in random_sequence(benchmark_suite(), 200, seed=0)}
        assert names == {"JPEG", "MPEG1", "HOUGH"}

    def test_empty_catalog_rejected(self):
        with pytest.raises(WorkloadError):
            random_sequence([], 10)

    def test_zero_length_rejected(self):
        with pytest.raises(WorkloadError):
            random_sequence(benchmark_suite(), 0)


class TestWeightedSequence:
    def test_degenerate_weight_selects_single_app(self):
        seq = weighted_sequence(benchmark_suite(), 50, [1, 0, 0], seed=0)
        assert all(g.name == "JPEG" for g in seq)

    def test_weight_length_mismatch(self):
        with pytest.raises(WorkloadError):
            weighted_sequence(benchmark_suite(), 10, [1, 2], seed=0)

    def test_negative_weights_rejected(self):
        with pytest.raises(WorkloadError):
            weighted_sequence(benchmark_suite(), 10, [1, -1, 1], seed=0)


class TestBurstyAndRoundRobin:
    def test_bursty_has_repeats(self):
        seq = bursty_sequence(benchmark_suite(), 100, burst_len=5, seed=0)
        repeats = sum(1 for a, b in zip(seq, seq[1:]) if a.name == b.name)
        assert repeats > 30  # much more locality than uniform (~33)

    def test_bursty_length_exact(self):
        assert len(bursty_sequence(benchmark_suite(), 37, seed=0)) == 37

    def test_bursty_invalid_burst(self):
        with pytest.raises(WorkloadError):
            bursty_sequence(benchmark_suite(), 10, burst_len=0)

    def test_round_robin_cycles(self):
        seq = round_robin_sequence(benchmark_suite(), 7)
        assert [g.name for g in seq] == [
            "JPEG", "MPEG1", "HOUGH", "JPEG", "MPEG1", "HOUGH", "JPEG",
        ]


class TestWorkload:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            Workload(apps=(), n_rus=4, reconfig_latency=4000)
        with pytest.raises(WorkloadError):
            Workload(apps=tuple(benchmark_suite()), n_rus=0, reconfig_latency=4000)
        with pytest.raises(WorkloadError):
            Workload(apps=tuple(benchmark_suite()), n_rus=4, reconfig_latency=-1)

    def test_histogram_and_distinct(self):
        w = paper_evaluation_workload(length=100, seed=5)
        hist = w.app_histogram()
        assert sum(hist.values()) == 100
        assert {g.name for g in w.distinct_graphs()} == set(hist)

    def test_n_tasks(self):
        w = quick_workload(length=10)
        assert w.n_tasks == sum(len(g) for g in w.apps)

    def test_with_device(self):
        w = quick_workload().with_device(n_rus=8)
        assert w.n_rus == 8


class TestScenarios:
    def test_paper_default_length(self):
        assert paper_evaluation_workload().n_apps == PAPER_SEQUENCE_LENGTH

    def test_scenarios_registry(self):
        assert "paper-eval" in available_scenarios()
        w = make_scenario("quick", length=12)
        assert w.n_apps == 12

    def test_unknown_scenario(self):
        with pytest.raises(WorkloadError):
            make_scenario("nope")

    def test_bursty_workload_name(self):
        assert bursty_workload(length=10).name.startswith("bursty")

    def test_round_robin_workload(self):
        w = adversarial_round_robin_workload(length=9)
        assert w.n_apps == 9
