"""Tests for the high-level simulate() API and SimulationResult metrics."""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.graphs.builders import chain_graph, fork_join_graph
from repro.graphs.multimedia import benchmark_suite
from repro.sim.semantics import ManagerSemantics
from repro.sim.simtime import ms
from repro.sim.simulator import (
    ideal_makespan,
    simulate,
    sum_of_critical_paths,
)


class TestIdealMakespan:
    def test_equals_sum_of_critical_paths_when_rus_suffice(self):
        apps = benchmark_suite()
        assert ideal_makespan(apps, 4) == sum_of_critical_paths(apps)

    def test_single_chain(self):
        g = chain_graph("G", [ms(3), ms(7)])
        assert ideal_makespan([g], 2) == ms(10)

    def test_repeated_apps(self):
        g = fork_join_graph("FJ", ms(1), [ms(2), ms(5)], ms(1))
        assert ideal_makespan([g, g, g], 4) == 3 * g.critical_path_length()


class TestSimulateMetrics:
    def test_overhead_is_makespan_minus_ideal(self):
        g = chain_graph("G", [ms(10), ms(10)])
        result = simulate([g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
        assert result.overhead_us == result.makespan_us - result.ideal_makespan_us
        assert result.overhead_us == ms(4)  # only the first load is exposed

    def test_reuse_pct_range(self):
        g = chain_graph("G", [ms(10)])
        result = simulate([g, g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
        assert result.reuse_pct == pytest.approx(50.0)

    def test_remaining_overhead_pct_normalisation(self):
        # Single app, one task: baseline = 1 exec * 4ms; overhead = 4ms.
        g = chain_graph("G", [ms(10)])
        result = simulate([g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
        assert result.remaining_overhead_pct() == pytest.approx(100.0)

    def test_zero_latency_zero_overhead(self):
        g = chain_graph("G", [ms(10), ms(5)])
        result = simulate([g, g], 4, 0, PolicyAdvisor(LRUPolicy()))
        assert result.overhead_us == 0
        assert result.remaining_overhead_pct() == 0.0

    def test_precomputed_ideal_accepted(self):
        g = chain_graph("G", [ms(10)])
        result = simulate(
            [g], 4, ms(4), PolicyAdvisor(LRUPolicy()), ideal_makespan_us=ms(10)
        )
        assert result.ideal_makespan_us == ms(10)

    def test_summary_keys(self):
        g = chain_graph("G", [ms(10)])
        summary = simulate([g], 4, ms(4), PolicyAdvisor(LRUPolicy())).summary()
        for key in (
            "makespan_us",
            "ideal_makespan_us",
            "overhead_us",
            "reuse_pct",
            "remaining_overhead_pct",
            "reconfigurations",
            "n_apps",
        ):
            assert key in summary


class TestDeterminism:
    def test_same_inputs_same_trace(self):
        apps = benchmark_suite() * 3
        r1 = simulate(apps, 4, ms(4), PolicyAdvisor(LRUPolicy()), ManagerSemantics())
        r2 = simulate(apps, 4, ms(4), PolicyAdvisor(LRUPolicy()), ManagerSemantics())
        assert r1.makespan_us == r2.makespan_us
        assert r1.trace.executions == r2.trace.executions
        assert r1.trace.reconfigs == r2.trace.reconfigs
