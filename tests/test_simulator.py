"""Tests for the high-level simulate() API and SimulationResult metrics."""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.graphs.builders import chain_graph, fork_join_graph
from repro.graphs.multimedia import benchmark_suite
from repro.sim.semantics import ManagerSemantics
from repro.sim.simtime import ms
from repro.sim.simulator import (
    ideal_makespan,
    run_simulation,
    simulate,
    sum_of_critical_paths,
)


class TestIdealMakespan:
    def test_equals_sum_of_critical_paths_when_rus_suffice(self):
        apps = benchmark_suite()
        assert ideal_makespan(apps, 4) == sum_of_critical_paths(apps)

    def test_single_chain(self):
        g = chain_graph("G", [ms(3), ms(7)])
        assert ideal_makespan([g], 2) == ms(10)

    def test_repeated_apps(self):
        g = fork_join_graph("FJ", ms(1), [ms(2), ms(5)], ms(1))
        assert ideal_makespan([g, g, g], 4) == 3 * g.critical_path_length()


class TestSimulateMetrics:
    def test_overhead_is_makespan_minus_ideal(self):
        g = chain_graph("G", [ms(10), ms(10)])
        result = simulate([g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
        assert result.overhead_us == result.makespan_us - result.ideal_makespan_us
        assert result.overhead_us == ms(4)  # only the first load is exposed

    def test_reuse_pct_range(self):
        g = chain_graph("G", [ms(10)])
        result = simulate([g, g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
        assert result.reuse_pct == pytest.approx(50.0)

    def test_remaining_overhead_pct_normalisation(self):
        # Single app, one task: baseline = 1 exec * 4ms; overhead = 4ms.
        g = chain_graph("G", [ms(10)])
        result = simulate([g], 4, ms(4), PolicyAdvisor(LRUPolicy()))
        assert result.remaining_overhead_pct() == pytest.approx(100.0)

    def test_zero_latency_zero_overhead(self):
        g = chain_graph("G", [ms(10), ms(5)])
        result = simulate([g, g], 4, 0, PolicyAdvisor(LRUPolicy()))
        assert result.overhead_us == 0
        assert result.remaining_overhead_pct() == 0.0

    def test_precomputed_ideal_accepted(self):
        g = chain_graph("G", [ms(10)])
        result = simulate(
            [g], 4, ms(4), PolicyAdvisor(LRUPolicy()), ideal_makespan_us=ms(10)
        )
        assert result.ideal_makespan_us == ms(10)

    def test_summary_keys(self):
        g = chain_graph("G", [ms(10)])
        summary = simulate([g], 4, ms(4), PolicyAdvisor(LRUPolicy())).summary()
        for key in (
            "makespan_us",
            "ideal_makespan_us",
            "overhead_us",
            "reuse_pct",
            "remaining_overhead_pct",
            "reconfigurations",
            "n_apps",
        ):
            assert key in summary


class TestArrivalAwareIdeal:
    """Regression: ideal_makespan() used to drop arrival_times (and
    semantics), so staggered-arrival runs booked idle waiting as
    reconfiguration overhead."""

    def test_staggered_overhead_equals_hand_computed_value(self):
        # Two single-task apps, 10 ms each, 4 ms latency, app B arriving
        # long after app A finished.  Measured: A loads 0-4, runs 4-14;
        # B arrives at 100, loads 100-104, runs 104-114 -> makespan 114.
        # Ideal (free loads, same arrivals): A runs 0-10, B runs 100-110
        # -> 110.  Overhead is exactly one exposed latency, 4 ms — not
        # the 94 ms the arrival-blind baseline (sum of critical paths,
        # 20 ms) would report.
        a = chain_graph("A", [ms(10)])
        b = chain_graph("B", [ms(10)])
        arrivals = [0, ms(100)]
        result = run_simulation(
            [a, b], 2, ms(4), PolicyAdvisor(LRUPolicy()), arrival_times=arrivals
        )
        assert result.makespan_us == ms(114)
        assert result.ideal_makespan_us == ms(110)
        assert result.overhead_us == ms(4)

    def test_ideal_makespan_accepts_arrivals_directly(self):
        a = chain_graph("A", [ms(10)])
        b = chain_graph("B", [ms(10)])
        assert ideal_makespan([a, b], 2) == ms(20)
        assert ideal_makespan([a, b], 2, arrival_times=[0, ms(100)]) == ms(110)
        # All-zero arrivals are the saturated default.
        assert ideal_makespan([a, b], 2, arrival_times=[0, 0]) == ms(20)

    def test_saturated_arrivals_unchanged(self):
        """Zero-arrival workloads keep the golden baseline byte-identical."""
        apps = benchmark_suite()
        assert ideal_makespan(apps, 4, arrival_times=[0] * len(apps)) == ideal_makespan(
            apps, 4
        )


class TestDeterminism:
    def test_same_inputs_same_trace(self):
        apps = benchmark_suite() * 3
        r1 = simulate(apps, 4, ms(4), PolicyAdvisor(LRUPolicy()), ManagerSemantics())
        r2 = simulate(apps, 4, ms(4), PolicyAdvisor(LRUPolicy()), ManagerSemantics())
        assert r1.makespan_us == r2.makespan_us
        assert r1.trace.executions == r2.trace.executions
        assert r1.trace.reconfigs == r2.trace.reconfigs
