"""Golden-value regression: the Session-based experiments reproduce the
seed code's numbers exactly.

The expected values below were captured by running the *seed* (pre-Session)
implementations of ``run_fig9a/b/c``, the ablations and the sensitivity
study at commit 2a1760c on short deterministic workloads.  The migrated
code paths must produce identical numbers cell-for-cell — the declarative
API is a refactor of the wiring, not of the model.
"""

import pytest

from repro.experiments.ablation import run_policy_zoo, run_window_sweep
from repro.experiments.fig9 import run_fig9a, run_fig9b, run_fig9c
from repro.experiments.sensitivity import run_sensitivity
from repro.workloads.scenarios import paper_evaluation_workload

RU_SUBSET = (4, 6)

#: (policy label, n_rus, reuse %, remaining overhead %, skips) per cell.
GOLDEN_FIG9A = [
    ("LRU", 4, 12.096774, 17.741935, 0),
    ("Local LFD (1)", 4, 21.774194, 17.741935, 0),
    ("Local LFD (2)", 4, 21.774194, 17.741935, 0),
    ("Local LFD (4)", 4, 21.774194, 17.741935, 0),
    ("LFD", 4, 21.774194, 17.741935, 0),
    ("LRU", 6, 36.290323, 12.903226, 0),
    ("Local LFD (1)", 6, 43.548387, 10.483871, 0),
    ("Local LFD (2)", 6, 43.548387, 8.064516, 0),
    ("Local LFD (4)", 6, 44.354839, 7.258065, 0),
    ("LFD", 6, 44.354839, 7.258065, 0),
]

GOLDEN_FIG9B = [
    ("LRU", 4, 12.096774, 17.741935, 0),
    ("Local LFD (1)", 4, 21.774194, 17.741935, 0),
    ("Local LFD (1) + Skip", 4, 30.645161, 29.83871, 28),
    ("LFD", 4, 21.774194, 17.741935, 0),
    ("LRU", 6, 36.290323, 12.903226, 0),
    ("Local LFD (1)", 6, 43.548387, 10.483871, 0),
    ("Local LFD (1) + Skip", 6, 50.0, 10.483871, 7),
    ("LFD", 6, 44.354839, 7.258065, 0),
]

GOLDEN_FIG9C = [
    ("LRU", 4, 12.096774, 17.741935, 0),
    ("Local LFD (1) + Skip", 4, 30.645161, 29.83871, 28),
    ("Local LFD (2) + Skip", 4, 32.258065, 36.693548, 38),
    ("Local LFD (4) + Skip", 4, 32.258065, 38.306452, 47),
    ("LFD", 4, 21.774194, 17.741935, 0),
    ("LRU", 6, 36.290323, 12.903226, 0),
    ("Local LFD (1) + Skip", 6, 50.0, 10.483871, 7),
    ("Local LFD (2) + Skip", 6, 52.419355, 8.870968, 21),
    ("Local LFD (4) + Skip", 6, 52.419355, 11.290323, 29),
    ("LFD", 6, 44.354839, 7.258065, 0),
]

#: (label, reuse %, remaining overhead %, reconfigs) on length=30/5 RUs.
GOLDEN_ZOO = [
    ("RANDOM", 28.86, 15.44, 106),
    ("MRU", 32.89, 14.77, 100),
    ("FIFO", 20.81, 15.44, 118),
    ("LRU", 26.17, 15.44, 110),
    ("LFU", 26.17, 15.44, 110),
    ("LRU-2", 20.81, 15.44, 118),
    ("CLOCK", 20.81, 15.44, 118),
    ("Local LFD (1)", 32.89, 14.77, 100),
    ("LFD", 32.89, 14.77, 100),
]

GOLDEN_WINDOW = [
    ("Local LFD (0)", 32.89, 0),
    ("Local LFD (2)", 32.89, 0),
    ("LFD (oracle)", 32.89, 0),
]

#: Per-seed average reuse of the sensitivity study (seeds 1/2, length 20).
GOLDEN_SENSITIVITY = {
    "LRU": (14.29, 14.29),
    "Local LFD (1)": (25.51, 19.39),
    "Local LFD (1) + Skip": (32.65, 28.57),
    "LFD": (25.51, 19.39),
}


@pytest.fixture(scope="module")
def workload25():
    return paper_evaluation_workload(length=25)


@pytest.fixture(scope="module")
def workload30():
    return paper_evaluation_workload(length=30, n_rus=5)


def _cells(sweep):
    return [
        (
            r.policy_label,
            r.n_rus,
            round(r.reuse_pct, 6),
            round(r.remaining_overhead_pct, 6),
            r.n_skips,
        )
        for r in sweep.records
    ]


@pytest.mark.parametrize(
    "runner,golden",
    [(run_fig9a, GOLDEN_FIG9A), (run_fig9b, GOLDEN_FIG9B), (run_fig9c, GOLDEN_FIG9C)],
    ids=["fig9a", "fig9b", "fig9c"],
)
def test_fig9_matches_seed(workload25, runner, golden):
    assert _cells(runner(workload25, ru_counts=RU_SUBSET)) == golden


def test_fig9_parallel_matches_seed(workload25):
    """The acceptance criterion's parallel leg: same goldens, 2 workers."""
    sweep = run_fig9a(workload25, ru_counts=RU_SUBSET, parallel=2)
    assert _cells(sweep) == GOLDEN_FIG9A


def test_policy_zoo_matches_seed(workload30):
    rows = run_policy_zoo(workload30)
    assert [
        (r.label, r.reuse_pct, r.remaining_overhead_pct, r.n_reconfigs) for r in rows
    ] == GOLDEN_ZOO


def test_window_sweep_matches_seed(workload30):
    rows = run_window_sweep(workload30, windows=(0, 2))
    assert [(r.label, r.reuse_pct, r.n_skips) for r in rows] == GOLDEN_WINDOW


def test_sensitivity_matches_seed():
    report = run_sensitivity(seeds=(1, 2), length=20, ru_counts=(4,))
    assert {r.policy_label: r.per_seed for r in report.results} == GOLDEN_SENSITIVITY
    assert report.crossover_rate == 1.0
