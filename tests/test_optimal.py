"""Exhaustive-search verification of the LFD optimality claim.

Belady's optimality is the paper's justification for using LFD as the
reuse upper bound; these tests verify it holds in the *scheduled,
prefetching* setting by comparing LFD's reuse against the true optimum
found by exploring every victim-choice sequence on small workloads.
"""

import pytest

from repro.core.optimal import ScriptedAdvisor, exhaustive_best_reuse
from repro.core.policies.classic import LRUPolicy
from repro.core.policies.lfd import LFDPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.exceptions import ExperimentError
from repro.experiments.motivational import fig2_sequence, fig3_sequence
from repro.graphs.builders import chain_graph
from repro.graphs.random_graphs import random_layered_graph
from repro.sim.semantics import ManagerSemantics
from repro.sim.simtime import ms
from repro.sim.simulator import simulate


def lfd_reuse(apps, n_rus, latency):
    result = simulate(
        apps, n_rus, latency, PolicyAdvisor(LFDPolicy()),
        ManagerSemantics(provide_oracle=True),
    )
    return result.trace.n_reused_executions


class TestFig2Optimality:
    def test_lfd_matches_exhaustive_optimum(self):
        """On the paper's Fig. 2 workload, LFD's 5 reuses are provably
        the maximum any replacement policy can achieve."""
        apps = fig2_sequence()
        optimum = exhaustive_best_reuse(apps, 4, ms(4))
        assert optimum.best_reuse == 5  # the paper's 41.7 % of 12 tasks
        assert lfd_reuse(apps, 4, ms(4)) == optimum.best_reuse

    def test_lru_is_suboptimal_here(self):
        apps = fig2_sequence()
        lru = simulate(apps, 4, ms(4), PolicyAdvisor(LRUPolicy()))
        optimum = exhaustive_best_reuse(apps, 4, ms(4))
        assert lru.trace.n_reused_executions < optimum.best_reuse


class TestFig3Optimality:
    def test_no_asap_policy_can_reuse_on_fig3(self):
        """Fig. 3's point: NO pure-ASAP victim choice achieves any reuse
        on that workload — only delaying (skip events) does."""
        apps = fig3_sequence()
        optimum = exhaustive_best_reuse(apps, 4, ms(4))
        assert optimum.best_reuse == 0


class TestRandomInstances:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lfd_matches_optimum_on_random_workloads(self, seed):
        a = random_layered_graph("A", 3, seed=seed, max_width=2,
                                 low_us=2000, high_us=9000)
        b = random_layered_graph("B", 2, seed=seed + 100, max_width=2,
                                 low_us=2000, high_us=9000)
        apps = [a, b, a, b]
        optimum = exhaustive_best_reuse(apps, 3, ms(4))
        assert lfd_reuse(apps, 3, ms(4)) == optimum.best_reuse


class TestSearchMechanics:
    def test_scripted_advisor_out_of_range(self):
        g = chain_graph("G", [ms(5)] * 4)
        from repro.sim.manager import ExecutionManager

        manager = ExecutionManager(
            graphs=[g], n_rus=2, reconfig_latency=ms(4),
            advisor=ScriptedAdvisor([99]),
        )
        with pytest.raises(ExperimentError):
            manager.run()

    def test_run_budget_enforced(self):
        apps = [chain_graph("G", [ms(5)] * 6)] * 4
        with pytest.raises(ExperimentError):
            exhaustive_best_reuse(apps, 2, ms(4), max_runs=3)

    def test_no_evictions_means_single_run(self):
        g = chain_graph("G", [ms(5), ms(5)])
        optimum = exhaustive_best_reuse([g, g], 4, ms(4))
        assert optimum.runs_explored == 1
        assert optimum.best_reuse == 2
