"""Integration tests asserting the paper's motivational figures EXACTLY.

These are the strongest correctness anchors of the reproduction: the
calibrated task graphs plus the default manager semantics must reproduce
every number in Figs. 2, 3 and 7 of the paper.
"""

import pytest

from repro.experiments.motivational import (
    RECONFIG_LATENCY,
    N_RUS,
    fig2_sequence,
    fig3_sequence,
    render_fig2_report,
    render_fig3_report,
    render_fig7_report,
    run_fig2,
    run_fig3,
    run_fig7,
)
from repro.sim.validation import validate_trace


class TestFig2:
    """Paper: LRU 16.7 % / 22 ms; LFD 41.7 % / 11 ms; Local LFD 41.7 % / 15 ms."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {row.label: row for row in run_fig2()}

    def test_lru_reuse(self, rows):
        assert rows["LRU"].reuse_pct == pytest.approx(16.7, abs=0.05)

    def test_lru_overhead(self, rows):
        assert rows["LRU"].overhead_ms == 22.0

    def test_lfd_reuse_is_optimal(self, rows):
        assert rows["LFD"].reuse_pct == pytest.approx(41.7, abs=0.05)

    def test_lfd_overhead(self, rows):
        assert rows["LFD"].overhead_ms == 11.0

    def test_local_lfd_reuse_matches_optimal(self, rows):
        assert rows["Local LFD (1)"].reuse_pct == pytest.approx(41.7, abs=0.05)

    def test_local_lfd_overhead(self, rows):
        assert rows["Local LFD (1)"].overhead_ms == 15.0

    def test_every_row_flags_match(self, rows):
        for row in rows.values():
            assert row.reuse_matches, row
            assert row.overhead_matches, row

    def test_sequence_has_12_tasks(self):
        assert sum(len(g) for g in fig2_sequence()) == 12


class TestFig3:
    """Paper: ASAP 0 % / 12 ms / 74 ms; Skip 10 % / 8 ms / 70 ms."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {row.label: row for row in run_fig3()}

    def test_asap_reuse_is_zero(self, rows):
        assert rows["Local LFD ASAP"].reuse_pct == 0.0

    def test_asap_overhead(self, rows):
        assert rows["Local LFD ASAP"].overhead_ms == 12.0

    def test_asap_makespan(self, rows):
        assert rows["Local LFD ASAP"].makespan_ms == 74.0

    def test_skip_reuse(self, rows):
        assert rows["Local LFD + Skip Events"].reuse_pct == pytest.approx(10.0)

    def test_skip_overhead(self, rows):
        assert rows["Local LFD + Skip Events"].overhead_ms == 8.0

    def test_skip_makespan(self, rows):
        assert rows["Local LFD + Skip Events"].makespan_ms == 70.0

    def test_sequence_has_10_tasks(self):
        assert sum(len(g) for g in fig3_sequence()) == 10


class TestFig7:
    """Paper: reference 30; delays 36 / 32 / 30 / 32; mobilities 0,0,0,1."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7()

    def test_reference(self, result):
        assert result.reference_makespan_ms == 30.0

    def test_delay5(self, result):
        assert result.delay5_makespan_ms == 36.0

    def test_delay6(self, result):
        assert result.delay6_makespan_ms == 32.0

    def test_delay7_once_free(self, result):
        assert result.delay7_once_makespan_ms == 30.0

    def test_delay7_twice(self, result):
        assert result.delay7_twice_makespan_ms == 32.0

    def test_mobilities(self, result):
        assert dict(result.mobilities) == {4: 0, 5: 0, 6: 0, 7: 1}


class TestReports:
    def test_fig2_report_renders(self):
        text = render_fig2_report()
        assert "LRU" in text and "16.7" in text and "22" in text

    def test_fig3_report_renders(self):
        text = render_fig3_report()
        assert "Skip Events" in text and "70" in text

    def test_fig7_report_renders(self):
        text = render_fig7_report()
        assert "30" in text and "mobilities" in text
