"""Tests for the experiment harnesses (fig9, tables, hybrid, ablation).

These use short workloads so the suite stays fast; the shape assertions
mirror the paper's qualitative claims.
"""

import pytest

from repro.experiments.ablation import (
    run_latency_sweep,
    run_policy_zoo,
    run_semantics_ablation,
    run_skip_mode_ablation,
    run_window_sweep,
    render_ablation_rows,
)
from repro.experiments.fig9 import (
    fig9a_specs,
    fig9b_specs,
    fig9c_specs,
    run_fig9a,
    run_fig9b,
    run_policy_sweep,
)
from repro.experiments.hybrid_speedup import run_hybrid_speedup
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.workloads.scenarios import paper_evaluation_workload

RU_SUBSET = (4, 6, 8)


@pytest.fixture(scope="module")
def small_workload():
    return paper_evaluation_workload(length=40)


class TestFig9Sweeps:
    @pytest.fixture(scope="class")
    def sweep_a(self, request):
        w = paper_evaluation_workload(length=40)
        return run_fig9a(w, ru_counts=RU_SUBSET)

    def test_all_cells_present(self, sweep_a):
        assert len(sweep_a.records) == len(fig9a_specs()) * len(RU_SUBSET)

    def test_lfd_reuse_at_least_lru(self, sweep_a):
        for n in RU_SUBSET:
            assert (
                sweep_a.cell("LFD", n).reuse_pct
                >= sweep_a.cell("LRU", n).reuse_pct
            )

    def test_window_monotone_towards_lfd(self, sweep_a):
        # Local LFD (4) must be at least as good as Local LFD (1) on average.
        assert sweep_a.average("Local LFD (4)", "reuse_pct") >= sweep_a.average(
            "Local LFD (1)", "reuse_pct"
        ) - 1e-9

    def test_reuse_grows_with_rus_for_lfd(self, sweep_a):
        series = sweep_a.series("LFD", "reuse_pct")
        assert series == sorted(series)

    def test_render_contains_all_policies(self, sweep_a):
        text = sweep_a.render_table("reuse_pct", "reuse")
        for spec in fig9a_specs():
            assert spec.label in text


class TestFig9bCrossover:
    def test_skip_events_beat_lfd_on_reuse(self, small_workload):
        """The paper's headline: Local LFD(1)+Skip outperforms LFD reuse."""
        sweep = run_fig9b(small_workload, ru_counts=RU_SUBSET)
        skip_avg = sweep.average("Local LFD (1) + Skip", "reuse_pct")
        lfd_avg = sweep.average("LFD", "reuse_pct")
        assert skip_avg > lfd_avg

    def test_skip_events_beat_plain_local_lfd(self, small_workload):
        sweep = run_fig9b(small_workload, ru_counts=RU_SUBSET)
        assert sweep.average("Local LFD (1) + Skip", "reuse_pct") > sweep.average(
            "Local LFD (1)", "reuse_pct"
        )

    def test_specs_cover_paper_lines(self):
        labels = [s.label for s in fig9b_specs()]
        assert labels == ["LRU", "Local LFD (1)", "Local LFD (1) + Skip", "LFD"]


class TestFig9cSpecs:
    def test_specs_cover_paper_lines(self):
        labels = [s.label for s in fig9c_specs()]
        assert "Local LFD (4) + Skip" in labels and "LFD" in labels

    def test_remaining_overhead_decreases_with_rus(self, small_workload):
        sweep = run_policy_sweep(
            [fig9c_specs()[-1]], "t", small_workload, ru_counts=(4, 8)
        )
        assert (
            sweep.cell("LFD", 8).remaining_overhead_pct
            <= sweep.cell("LFD", 4).remaining_overhead_pct
        )


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(sequence_length=200, calls=200, repeats=1)

    def test_has_five_strategies(self, rows):
        assert len(rows) == 5

    def test_lru_fastest(self, rows):
        lru = next(r for r in rows if r.label == "LRU")
        assert all(lru.mean_decision_us <= r.mean_decision_us for r in rows)

    def test_lfd_slowest(self, rows):
        lfd = next(r for r in rows if r.label == "LFD")
        assert all(lfd.mean_decision_us >= r.mean_decision_us for r in rows)

    def test_lfd_orders_of_magnitude_above_local(self, rows):
        lfd = next(r for r in rows if r.label == "LFD")
        local1 = next(r for r in rows if r.label.startswith("Local LFD (1)"))
        assert lfd.mean_decision_us / local1.mean_decision_us > 10

    def test_local_windows_scale(self, rows):
        l1 = next(r for r in rows if "(1)" in r.label)
        l4 = next(r for r in rows if "(4)" in r.label)
        assert l4.refs_scanned > l1.refs_scanned

    def test_render(self, rows):
        text = render_table1(rows)
        assert "Table I" in text and "LFD" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(decision_calls=200)

    def test_covers_three_benchmarks(self, rows):
        assert [r.app for r in rows] == ["JPEG", "MPEG1", "HOUGH"]

    def test_initial_exec_matches_paper(self, rows):
        assert {r.app: r.initial_exec_ms for r in rows} == {
            "JPEG": 79.0,
            "MPEG1": 37.0,
            "HOUGH": 94.0,
        }

    def test_module_overhead_small(self, rows):
        # The paper's claim: the replacement module is negligible
        # (< ~1 % of application execution time).
        for row in rows:
            assert row.overhead_pct < 5.0

    def test_design_time_dominates_runtime(self, rows):
        for row in rows:
            assert row.design_over_runtime > 10

    def test_render_contains_paper_reference(self, rows):
        text = render_table2(rows)
        assert "PowerPC" in text and "JPEG" in text


class TestHybridSpeedup:
    def test_speedup_at_least_10x(self):
        result = run_hybrid_speedup(calls_hybrid=200, calls_runtime=5)
        assert result.speedup >= 10.0

    def test_design_time_recorded(self):
        result = run_hybrid_speedup(calls_hybrid=50, calls_runtime=2)
        assert result.design_time_ms > 0


class TestAblations:
    def test_window_sweep_monotone_avg(self, small_workload):
        rows = run_window_sweep(small_workload, windows=(0, 4))
        by_label = {r.label: r for r in rows}
        assert by_label["Local LFD (4)"].reuse_pct >= by_label["Local LFD (0)"].reuse_pct

    def test_semantics_ablation_has_all_modes(self, small_workload):
        labels = [r.label for r in run_semantics_ablation(small_workload)]
        assert len(labels) == 3

    def test_skip_modes(self, small_workload):
        rows = run_skip_mode_ablation(small_workload)
        by_label = {r.label: r for r in rows}
        assert by_label["skip mode: literal"].reuse_pct >= by_label["no skips (ASAP)"].reuse_pct

    def test_policy_zoo_lfd_wins(self, small_workload):
        rows = run_policy_zoo(small_workload)
        by_label = {r.label: r for r in rows}
        assert by_label["LFD"].reuse_pct == max(r.reuse_pct for r in rows)

    def test_latency_sweep_rows(self, small_workload):
        rows = run_latency_sweep(small_workload, latencies_us=(1000, 8000))
        assert len(rows) == 4

    def test_render(self, small_workload):
        text = render_ablation_rows("t", run_policy_zoo(small_workload))
        assert "LFD" in text
