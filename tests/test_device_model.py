"""The repro.hw device model: slots, latency models, controllers.

Covers model semantics and validation, the controller pool's
deterministic arbitration, slot-compatibility filtering, per-configuration
latencies in traces, device-aware artifact keys (byte-identical on the
paper path), the fixed-vs-summed no-reuse baseline regression, the
aggregate-view ``TypeError`` satellites, per-controller Gantt lanes, the
device-parameterised scenarios, ``Session.device_sweep`` and the CLI
device flags.
"""

import json

import pytest

from repro.core.device import Device, PAPER_DEVICE
from repro.core.policy_spec import local_lfd_spec, lru_spec
from repro.core.replacement_module import PolicyAdvisor
from repro.core.policies.classic import LRUPolicy
from repro.exceptions import DeviceError, SimulationError, WorkloadError
from repro.graphs.builders import TaskGraphBuilder, chain_graph
from repro.graphs.task import ConfigId
from repro.hw import (
    BitstreamLatency,
    DeviceModel,
    FixedLatency,
    PerConfigLatency,
    RUSlot,
    as_device_model,
    available_device_presets,
    make_device,
    parse_latency_model,
)
from repro.metrics.utilization import app_latency_stats, utilization
from repro.session import Session
from repro.sim.gantt import render_gantt, render_timeline_events
from repro.sim.manager import ExecutionManager
from repro.sim.simulator import run_simulation
from repro.sim.tracing import AggregateTrace
from repro.sim.validation import validate_trace
from repro.workloads.scenarios import make_scenario, scenario_info
from repro.artifacts.keys import device_fingerprint, ideal_key, mobility_key


def _advisor():
    return PolicyAdvisor(LRUPolicy())


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
class TestLatencyModels:
    CFG = ConfigId("G", 1)

    def test_fixed(self):
        model = FixedLatency(4000)
        assert model.latency_us(self.CFG, 512) == 4000
        assert model.latency_us(self.CFG, 9999) == 4000
        assert model.fixed_us == 4000 and model.nominal_us == 4000

    def test_bitstream_proportional(self):
        model = BitstreamLatency(us_per_kb=8, base_us=100)
        assert model.latency_us(self.CFG, 512) == 100 + 8 * 512
        assert model.fixed_us is None
        assert model.nominal_us == 100 + 8 * 512

    def test_per_config_table(self):
        model = PerConfigLatency.from_table({self.CFG: 1234}, default_us=4000)
        assert model.latency_us(self.CFG, 512) == 1234
        assert model.latency_us(ConfigId("G", 2), 512) == 4000
        assert model.fixed_us is None  # overrides present -> varies

    def test_validation(self):
        with pytest.raises(DeviceError):
            FixedLatency(-1)
        with pytest.raises(DeviceError):
            BitstreamLatency(us_per_kb=-2)

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("fixed:4000", FixedLatency(4000)),
            ("per-kb:8", BitstreamLatency(us_per_kb=8)),
            ("per-kb:8+500", BitstreamLatency(us_per_kb=8, base_us=500)),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_latency_model(spec) == expected

    @pytest.mark.parametrize("bad", ["", "fixed", "per-kb:", "weird:1", "fixed:x"])
    def test_parse_rejects(self, bad):
        with pytest.raises(DeviceError, match="latency model"):
            parse_latency_model(bad)


# ----------------------------------------------------------------------
# The model itself
# ----------------------------------------------------------------------
class TestDeviceModel:
    def test_homogeneous_is_paper_path(self):
        model = DeviceModel.homogeneous(4, 4000)
        assert model.n_rus == 4
        assert model.reconfig_latency == 4000
        assert model.is_paper_path()
        assert model.has_uniform_slots

    def test_capacity_or_controllers_leave_paper_path(self):
        assert not DeviceModel.homogeneous(4, 4000, n_controllers=2).is_paper_path()
        capped = DeviceModel(slots=(RUSlot(capacity_kb=512),))
        assert not capped.is_paper_path()
        proportional = DeviceModel(
            slots=(RUSlot(),), latency_model=BitstreamLatency(8)
        )
        assert not proportional.is_paper_path()

    def test_slot_compatibility(self):
        model = DeviceModel(
            slots=(RUSlot(kind="big", capacity_kb=768), RUSlot(kind="little", capacity_kb=256))
        )
        assert model.compatible_slot_indices(700) == (0,)
        assert model.compatible_slot_indices(200) == (0, 1)
        assert model.compatible_slot_indices(1000) == ()

    def test_resize_heterogeneous_raises(self):
        model = make_device("big-little-4")
        with pytest.raises(DeviceError, match="resize heterogeneous"):
            model.with_n_rus(6)
        assert DeviceModel.homogeneous(4, 4000).with_n_rus(6).n_rus == 6
        # Same-size "resize" is a no-op even on heterogeneous floorplans.
        assert model.with_n_rus(4) is model

    def test_zero_latency_keeps_floorplan(self):
        model = make_device("big-little-4").zero_latency()
        assert model.fixed_latency_us == 0
        assert not model.has_uniform_slots

    def test_validation(self):
        with pytest.raises(DeviceError):
            DeviceModel(slots=())
        with pytest.raises(DeviceError):
            DeviceModel.homogeneous(4, 4000, n_controllers=0)
        with pytest.raises(DeviceError):
            RUSlot(capacity_kb=0)

    def test_coercion_and_bridge(self):
        model = as_device_model(Device(n_rus=5, reconfig_latency=2000))
        assert (model.n_rus, model.reconfig_latency) == (5, 2000)
        assert model.is_paper_path()
        assert PAPER_DEVICE.to_model().is_paper_path()
        with pytest.raises(DeviceError):
            as_device_model(object())

    def test_fingerprint_is_canonical_json(self):
        fp = make_device("big-little-4").fingerprint()
        assert json.dumps(fp, sort_keys=True)  # serialisable
        assert fp == make_device("big-little-4").fingerprint()

    def test_presets_registry(self):
        assert {"paper-4ru", "paper-2ctrl", "big-little-4", "sized-4ru"} <= set(
            available_device_presets()
        )
        with pytest.raises(DeviceError, match="unknown device preset"):
            make_device("nope")


# ----------------------------------------------------------------------
# Engine: controllers
# ----------------------------------------------------------------------
def _fork(name="F", n_branches=3):
    builder = TaskGraphBuilder(name).add_task(1, 10_000)
    for i in range(2, 2 + n_branches):
        builder.add_task(i, 5_000).add_edge(1, i)
    return builder.build()


class TestControllerPool:
    def test_two_controllers_load_in_parallel(self):
        # 1 -> {2,3}: with one controller the three loads serialize
        # (0-4, 4-8, 8-12); with two, loads 1+2 run in parallel.
        graph = _fork(n_branches=2)
        single = ExecutionManager(
            graphs=[graph], advisor=_advisor(), device=DeviceModel.homogeneous(4, 4000)
        ).run()
        dual = ExecutionManager(
            graphs=[graph],
            advisor=_advisor(),
            device=DeviceModel.homogeneous(4, 4000, n_controllers=2),
        ).run()
        assert [(r.start, r.end) for r in sorted(single.reconfigs, key=lambda r: r.start)] == [
            (0, 4000), (4000, 8000), (8000, 12000)
        ]
        assert [(r.start, r.end) for r in sorted(dual.reconfigs, key=lambda r: r.start)] == [
            (0, 4000), (0, 4000), (4000, 8000)
        ]
        validate_trace(dual, [graph])

    def test_arbitration_lowest_free_controller(self):
        graph = _fork(n_branches=3)
        trace = ExecutionManager(
            graphs=[graph],
            advisor=_advisor(),
            device=DeviceModel.homogeneous(4, 4000, n_controllers=2),
        ).run()
        recs = sorted(trace.reconfigs, key=lambda r: (r.start, r.controller))
        # First two loads at t=0 take controllers 0 and 1; the next load
        # takes the lowest controller that freed (0 again).
        assert [(r.start, r.controller) for r in recs] == [
            (0, 0), (0, 1), (4000, 0), (4000, 1)
        ]
        assert trace.n_controllers == 2

    def test_controller_count_in_validation(self):
        graph = _fork()
        trace = ExecutionManager(
            graphs=[graph],
            advisor=_advisor(),
            device=DeviceModel.homogeneous(4, 4000, n_controllers=3),
        ).run()
        validate_trace(trace, [graph])

    def test_multi_controller_never_slower_on_paper_eval(self):
        workload = make_scenario("paper-eval", length=40)
        results = {}
        for n in (1, 2):
            device = DeviceModel.homogeneous(4, 16_000, n_controllers=n)
            spec = lru_spec()
            results[n] = run_simulation(
                workload.apps,
                advisor=spec.make_advisor(),
                semantics=spec.make_semantics(),
                ideal_makespan_us=0,
                trace="aggregate",
                device=device,
            ).makespan_us
        assert results[2] <= results[1]


# ----------------------------------------------------------------------
# Engine: slots and per-configuration latencies
# ----------------------------------------------------------------------
class TestSlotsAndLatencies:
    def test_config_fitting_nowhere_fails_at_construction(self):
        graph = TaskGraphBuilder("BIG").add_task(1, 10_000, bitstream_kb=2048).build()
        with pytest.raises(SimulationError, match="no slot of device"):
            ExecutionManager(
                graphs=[graph],
                advisor=_advisor(),
                device=DeviceModel(slots=(RUSlot(capacity_kb=512),)),
            )

    def test_big_config_only_loads_into_big_slots(self):
        big = TaskGraphBuilder("APP").add_task(1, 10_000, bitstream_kb=700).add_task(
            2, 10_000, bitstream_kb=100
        ).add_edge(1, 2).build()
        device = DeviceModel(
            slots=(RUSlot(kind="little", capacity_kb=256), RUSlot(kind="big", capacity_kb=768)),
        )
        trace = ExecutionManager(graphs=[big], advisor=_advisor(), device=device).run()
        by_node = {r.config.node_id: r.ru for r in trace.reconfigs}
        assert by_node[1] == 1  # the 700 KiB bitstream skipped the little slot
        assert by_node[2] == 0  # the 100 KiB bitstream took the first free slot
        validate_trace(trace, [big])

    def test_per_config_latency_lands_in_events(self):
        graph = (
            TaskGraphBuilder("S")
            .add_task(1, 10_000, bitstream_kb=100)
            .add_task(2, 10_000, bitstream_kb=400)
            .add_edge(1, 2)
            .build()
        )
        device = DeviceModel(
            slots=(RUSlot(), RUSlot()), latency_model=BitstreamLatency(us_per_kb=10)
        )
        trace = ExecutionManager(graphs=[graph], advisor=_advisor(), device=device).run()
        latencies = {r.config.node_id: r.latency for r in trace.reconfigs}
        assert latencies == {1: 1000, 2: 4000}
        validate_trace(trace, [graph])

    def test_sized_ideal_uses_zero_latency_same_floorplan(self):
        workload = make_scenario("big-little", length=10)
        session = Session(workload=workload)
        result = session.run(lru_spec())
        # The ideal ran on the same constrained floorplan: overhead must
        # still be the makespan delta, and non-negative.
        assert result.overhead_us >= 0
        assert result.ideal_makespan_us > 0


# ----------------------------------------------------------------------
# Satellite: remaining_overhead_pct via summed per-event latencies
# ----------------------------------------------------------------------
class TestNoReuseBaseline:
    def test_fixed_latency_value_identical_to_legacy_formula(self):
        workload = make_scenario("paper-eval", length=25)
        result = Session(workload=workload).run(lru_spec())
        trace = result.trace
        assert trace.no_reuse_baseline_us == trace.n_executions * trace.reconfig_latency
        legacy = 100.0 * result.overhead_us / (
            trace.n_executions * trace.reconfig_latency
        )
        assert result.remaining_overhead_pct() == pytest.approx(legacy, abs=0)

    def test_per_config_baseline_sums_actual_costs(self):
        workload = make_scenario("sized-bitstreams", length=25)
        result = Session(workload=workload).run(lru_spec())
        trace = result.trace
        # Workload has 192 KiB and 640 KiB bitstreams at 8 us/KiB: the
        # naive n_executions * nominal product is wrong, the summed
        # baseline equals the per-execution costs exactly.
        per_exec = {
            nid: kb * 8
            for g in workload.distinct_graphs()
            for nid, kb in (
                (n, g.task(n).bitstream_kb) for n in g.node_ids
            )
        }
        expected = sum(
            per_exec[e.config.node_id] for e in trace.executions
        )
        assert trace.no_reuse_baseline_us == expected
        assert trace.no_reuse_baseline_us != trace.n_executions * trace.reconfig_latency
        assert result.remaining_overhead_pct() == pytest.approx(
            100.0 * result.overhead_us / expected
        )

    def test_aggregate_view_carries_the_same_baseline(self):
        workload = make_scenario("sized-bitstreams", length=25)
        session = Session(workload=workload)
        full = session.run(lru_spec(), trace="full")
        agg = session.run(lru_spec(), trace="aggregate")
        assert isinstance(agg.trace, AggregateTrace)
        assert agg.trace.no_reuse_baseline_us == full.trace.no_reuse_baseline_us
        assert agg.remaining_overhead_pct() == full.remaining_overhead_pct()


# ----------------------------------------------------------------------
# Satellite: aggregate views fail loudly in record-level helpers
# ----------------------------------------------------------------------
class TestAggregateTypeErrors:
    @pytest.fixture(scope="class")
    def aggregate(self):
        workload = make_scenario("quick", length=10)
        return Session(workload=workload).run(lru_spec(), trace="aggregate").trace

    @pytest.mark.parametrize(
        "helper",
        [
            lambda t: utilization(t),
            lambda t: app_latency_stats(t, []),
            lambda t: render_gantt(t),
            lambda t: render_timeline_events(t),
        ],
        ids=["utilization", "app_latency_stats", "render_gantt", "render_timeline_events"],
    )
    def test_clear_type_error(self, aggregate, helper):
        with pytest.raises(TypeError, match="AggregateTrace.*trace='full'"):
            helper(aggregate)


# ----------------------------------------------------------------------
# Satellite: per-controller Gantt lanes
# ----------------------------------------------------------------------
class TestGanttControllerLanes:
    def test_single_controller_has_no_lanes(self):
        trace = ExecutionManager(
            graphs=[_fork()], advisor=_advisor(), n_rus=4, reconfig_latency=4000
        ).run()
        assert "C0:" not in render_gantt(trace)

    def test_multi_controller_lanes_rendered(self):
        trace = ExecutionManager(
            graphs=[_fork()],
            advisor=_advisor(),
            device=DeviceModel.homogeneous(4, 4000, n_controllers=2),
        ).run()
        text = render_gantt(trace)
        assert "C0:" in text and "C1:" in text
        assert "loads per controller (2)" in text


# ----------------------------------------------------------------------
# Artifact keys
# ----------------------------------------------------------------------
class TestDeviceKeys:
    def test_paper_path_devices_keep_legacy_keys(self):
        paper = DeviceModel.homogeneous(4, 4000)
        assert device_fingerprint(None) is None
        assert device_fingerprint(paper) is None
        assert mobility_key("c", 4, 4000) == mobility_key("c", 4, 4000, device=paper)
        assert ideal_key("c", 4) == ideal_key("c", 4, device=paper)

    def test_heterogeneous_devices_get_distinct_keys(self):
        hetero = make_device("big-little-4")
        dual = DeviceModel.homogeneous(4, 4000, n_controllers=2)
        keys = {
            mobility_key("c", 4, 4000),
            mobility_key("c", 4, 4000, device=hetero),
            mobility_key("c", 4, 4000, device=dual),
        }
        assert len(keys) == 3

    def test_ideal_key_ignores_latency_model_but_not_floorplan(self):
        sized = make_device("sized-4ru")  # uniform slots, proportional latency
        hetero = make_device("big-little-4")
        # Latency cannot shape a zero-latency ideal: uniform-slot
        # single-controller devices share the legacy entry.
        assert ideal_key("c", 4, device=sized) == ideal_key("c", 4)
        assert ideal_key("c", 4, device=hetero) != ideal_key("c", 4)


# ----------------------------------------------------------------------
# Scenarios, session, CLI
# ----------------------------------------------------------------------
class TestDeviceScenariosAndSession:
    def test_workload_device_consistency_enforced(self):
        from repro.workloads.sequence import Workload

        graph = chain_graph("G", [10_000])
        with pytest.raises(WorkloadError, match="device model has"):
            Workload(
                apps=(graph,),
                n_rus=4,
                reconfig_latency=4000,
                device=DeviceModel.homogeneous(2, 4000),
            )

    @pytest.mark.parametrize(
        "name", ["multi-controller", "big-little", "sized-bitstreams"]
    )
    def test_scenarios_run_end_to_end(self, name):
        session = Session(workload=name, length=15)
        result = session.run(local_lfd_spec(1, skip_events=True))
        assert result.trace.n_executions == sum(
            len(g) for g in session.workload.apps
        )

    def test_multi_controller_events_are_controller_attributed(self):
        session = Session(workload="multi-controller", length=15, controllers=2)
        trace = session.run(lru_spec()).trace
        assert trace.n_controllers == 2
        assert {r.controller for r in trace.reconfigs} == {0, 1}

    def test_device_sweep(self):
        session = Session(workload=make_scenario("quick", length=12))
        records = session.device_sweep(
            [lru_spec()],
            devices=[
                DeviceModel.homogeneous(4, 4000),
                DeviceModel.homogeneous(4, 4000, n_controllers=2),
                make_device("sized-4ru"),
            ],
        )
        assert [r.device_label for r in records] == [
            "4 RUs @ fixed 4000us",
            "4 RUs @ fixed 4000us, 2 controllers",
            "sized-4ru",
        ]
        # Controllers cannot hurt; the sized device differs from fixed.
        assert records[1].record.makespan_ms <= records[0].record.makespan_ms

    def test_ideal_shared_across_latency_and_controller_variants(self):
        # Only a mixed-capacity floorplan can shape a zero-latency ideal:
        # devices differing in controllers or latency model share one
        # cached computation (and one disk entry).
        session = Session(workload=make_scenario("quick", length=10))
        session.device_sweep(
            [lru_spec()],
            devices=[
                DeviceModel.homogeneous(4, 4000),
                DeviceModel.homogeneous(4, 4000, n_controllers=2),
                make_device("sized-4ru"),
            ],
        )
        assert session.cache.ideal_stats.computations == 1

    def test_ideal_cache_rejects_contradictory_n_rus(self):
        from repro.exceptions import ExperimentError

        session = Session(workload=make_scenario("quick", length=10))
        with pytest.raises(ExperimentError, match="contradicts"):
            session.cache.ideal_makespan_us(
                "key", session.workload.apps, 8,
                device=make_device("big-little-4"),
            )

    def test_sweep_over_ru_counts_rejects_heterogeneous_device(self):
        session = Session(
            device=make_device("big-little-4"),
            workload=make_scenario("big-little", length=8),
        )
        with pytest.raises(DeviceError, match="device_sweep"):
            session.sweep([lru_spec()], ru_counts=(4, 6))

    def test_scenario_info_exposes_defaults(self):
        info = scenario_info("multi-controller")
        assert ("controllers", 2) in info.defaults
        assert "controllers=2" in info.signature()


class TestLegacyEventCompat:
    def test_pre_refactor_jsonl_events_parse_with_defaults(self):
        from repro.sim.tracing import event_from_dict

        event = event_from_dict(
            {"event": "ReconfigStart", "time": 0, "ru": 0,
             "config": ["HOUGH", 1], "app_index": 0, "end": 4000}
        )
        assert event.controller == 0 and event.latency == 4000
        end = event_from_dict(
            {"event": "ReconfigEnd", "time": 4000, "ru": 0,
             "config": ["HOUGH", 1], "app_index": 0}
        )
        assert end.controller == 0 and end.latency == 0
        exec_start = event_from_dict(
            {"event": "ExecStart", "time": 4000, "ru": 0,
             "config": ["HOUGH", 1], "app_index": 0, "end": 20000,
             "reused": False}
        )
        assert exec_start.load_us == 0
        run_start = event_from_dict(
            {"event": "RunStart", "time": 0, "n_rus": 4,
             "reconfig_latency": 4000, "n_apps": 1}
        )
        assert run_start.n_controllers == 1


class TestCLIDeviceFlags:
    def test_run_multi_controller(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "--scenario", "multi-controller", "--controllers", "2",
             "--length", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 controller(s)" in out

    def test_run_heterogeneous_scenario_with_matching_rus(self, capsys):
        # Regression: --rus equal to the heterogeneous device's size must
        # not crash the result-printing path with a resize error.
        from repro.cli import main

        assert main(
            ["run", "--scenario", "big-little", "--length", "10", "--rus", "4"]
        ) == 0
        assert "big" in capsys.readouterr().out

    def test_run_device_preset_and_latency_model(self, capsys):
        from repro.cli import main

        assert main(
            ["run", "--scenario", "quick", "--length", "10",
             "--device", "paper-2ctrl", "--latency-model", "per-kb:8"]
        ) == 0
        out = capsys.readouterr().out
        assert "8us/KiB" in out and "2 controller(s)" in out

    def test_device_flags_rejected_outside_run(self, capsys):
        from repro.cli import main

        assert main(["fig2", "--controllers", "2"]) == 2
        assert "only supported by the 'run' command" in capsys.readouterr().err

    def test_scenarios_lists_factory_defaults(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "factory kwargs" in out
        assert "length=500" in out and "controllers=2" in out
