"""Unit tests for repro.graphs.task."""

import pytest

from repro.graphs.task import ConfigId, TaskInstance, TaskSpec


class TestConfigId:
    def test_fields(self):
        cfg = ConfigId("JPEG", 3)
        assert cfg.graph_name == "JPEG"
        assert cfg.node_id == 3

    def test_equality_and_hash(self):
        assert ConfigId("A", 1) == ConfigId("A", 1)
        assert ConfigId("A", 1) != ConfigId("A", 2)
        assert ConfigId("A", 1) != ConfigId("B", 1)
        assert len({ConfigId("A", 1), ConfigId("A", 1), ConfigId("B", 1)}) == 2

    def test_str(self):
        assert str(ConfigId("JPEG", 3)) == "JPEG.3"

    def test_is_tuple(self):
        # ConfigId must stay a cheap tuple subtype (hot path in policies).
        assert isinstance(ConfigId("A", 1), tuple)


class TestTaskSpec:
    def test_valid_construction(self):
        spec = TaskSpec(node_id=1, exec_time=2500)
        assert spec.exec_time == 2500
        assert spec.name == "t1"
        assert spec.bitstream_kb == 512

    def test_explicit_name(self):
        assert TaskSpec(node_id=2, exec_time=1, name="idct").name == "idct"

    def test_rejects_zero_exec_time(self):
        with pytest.raises(ValueError, match="exec_time"):
            TaskSpec(node_id=1, exec_time=0)

    def test_rejects_negative_exec_time(self):
        with pytest.raises(ValueError, match="exec_time"):
            TaskSpec(node_id=1, exec_time=-5)

    def test_rejects_negative_node_id(self):
        with pytest.raises(ValueError, match="node_id"):
            TaskSpec(node_id=-1, exec_time=10)

    def test_rejects_nonpositive_bitstream(self):
        with pytest.raises(ValueError, match="bitstream_kb"):
            TaskSpec(node_id=1, exec_time=10, bitstream_kb=0)

    def test_with_exec_time_copies(self):
        spec = TaskSpec(node_id=1, exec_time=100, name="x", bitstream_kb=64)
        clone = spec.with_exec_time(250)
        assert clone.exec_time == 250
        assert clone.name == "x"
        assert clone.bitstream_kb == 64
        assert spec.exec_time == 100  # original untouched

    def test_frozen(self):
        spec = TaskSpec(node_id=1, exec_time=100)
        with pytest.raises(Exception):
            spec.exec_time = 5  # type: ignore[misc]


class TestTaskInstance:
    def test_accessors(self):
        inst = TaskInstance(app_index=7, config=ConfigId("HOUGH", 2), exec_time=999)
        assert inst.node_id == 2
        assert inst.graph_name == "HOUGH"
        assert inst.app_index == 7
        assert "app7" in str(inst)

    def test_instances_of_same_config_compare_by_app(self):
        a = TaskInstance(app_index=0, config=ConfigId("A", 1), exec_time=10)
        b = TaskInstance(app_index=1, config=ConfigId("A", 1), exec_time=10)
        assert a != b
        assert a.config == b.config
