"""Tests for utilization metrics, result export and DOT rendering."""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.experiments.export import (
    rows_to_csv,
    save_text,
    sweep_from_csv,
    sweep_to_csv,
    sweep_to_json,
)
from repro.graphs.builders import chain_graph, fork_join_graph
from repro.graphs.dot import graph_to_dot, save_dot
from repro.graphs.multimedia import hough_transform
from repro.metrics.summary import PolicyRunRecord, SweepResult
from repro.metrics.utilization import app_latency_stats, utilization
from repro.sim.simtime import ms
from repro.sim.simulator import simulate
from repro.sim.trace import Trace


def run_small():
    g = chain_graph("G", [ms(10), ms(10)])
    apps = [g, g]
    return apps, simulate(apps, 2, ms(4), PolicyAdvisor(LRUPolicy()))


class TestUtilization:
    def test_fractions_in_unit_range(self):
        _, result = run_small()
        report = utilization(result.trace)
        for value in report.exec_utilization.values():
            assert 0.0 <= value <= 1.0
        for value in report.reconfig_utilization.values():
            assert 0.0 <= value <= 1.0

    def test_total_busy_matches_trace(self):
        _, result = run_small()
        report = utilization(result.trace)
        busy_us = sum(
            u * report.makespan_us for u in report.exec_utilization.values()
        )
        assert busy_us == pytest.approx(sum(e.duration for e in result.trace.executions))

    def test_empty_trace(self):
        report = utilization(Trace(n_rus=2, reconfig_latency=0))
        assert report.mean_exec_utilization == 0.0


class TestAppLatency:
    def test_turnaround_partition(self):
        apps, result = run_small()
        stats = app_latency_stats(result.trace, apps)
        # Turnarounds partition the makespan.
        assert stats.mean_turnaround_us * len(apps) == pytest.approx(
            result.makespan_us
        )
        assert stats.mean_slowdown >= 1.0

    def test_p95_at_least_p50(self):
        apps, result = run_small()
        stats = app_latency_stats(result.trace, apps)
        assert stats.p95_turnaround_us >= stats.p50_turnaround_us

    def test_empty(self):
        stats = app_latency_stats(Trace(n_rus=1, reconfig_latency=0), [])
        assert stats.max_turnaround_us == 0


def _sweep():
    sweep = SweepResult(title="T", ru_counts=(4, 5))
    for n_rus, reuse in ((4, 10.0), (5, 20.0)):
        sweep.add(
            PolicyRunRecord(
                policy_label="LRU",
                n_rus=n_rus,
                reuse_pct=reuse,
                remaining_overhead_pct=9.0,
                overhead_ms=1.5,
                makespan_ms=10.0,
                ideal_makespan_ms=8.5,
                n_reconfigurations=7,
                n_reuses=3,
                n_skips=1,
            )
        )
    return sweep


class TestExport:
    def test_csv_round_trip(self):
        sweep = _sweep()
        text = sweep_to_csv(sweep)
        records = sweep_from_csv(text)
        assert records == sweep.records

    def test_csv_has_header(self):
        assert sweep_to_csv(_sweep()).splitlines()[0].startswith("policy_label,")

    def test_json_fields(self):
        import json

        payload = json.loads(sweep_to_json(_sweep()))
        assert payload["title"] == "T"
        assert payload["ru_counts"] == [4, 5]
        assert len(payload["records"]) == 2

    def test_rows_to_csv_dataclasses(self):
        from repro.experiments.ablation import AblationRow

        rows = [
            AblationRow("x", 1.0, 2.0, 3.0, 4, 5, 6.0),
            AblationRow("y", 1.0, 2.0, 3.0, 4, 5, 6.0),
        ]
        text = rows_to_csv(rows)
        assert text.splitlines()[0].startswith("label,")
        assert len(text.splitlines()) == 3

    def test_rows_to_csv_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            rows_to_csv([{"a": 1}])

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_save_text(self, tmp_path):
        path = tmp_path / "out.csv"
        save_text("hello", str(path))
        assert path.read_text() == "hello"


class TestDot:
    def test_contains_nodes_and_edges(self):
        g = fork_join_graph("FJ", ms(1), [ms(2), ms(3)], ms(1))
        dot = graph_to_dot(g)
        assert dot.startswith('digraph "FJ"')
        for nid in g.node_ids:
            assert f"n{nid}" in dot
        assert "->" in dot

    def test_mobility_annotations(self):
        g = chain_graph("C", [ms(1), ms(2)])
        dot = graph_to_dot(g, mobility={1: 0, 2: 3})
        assert "mobility 3" in dot
        assert "peripheries=2" in dot

    def test_critical_path_bold(self):
        g = hough_transform()
        dot = graph_to_dot(g, highlight_critical_path=True)
        assert "penwidth=2.5" in dot

    def test_save(self, tmp_path):
        path = tmp_path / "g.dot"
        save_dot(chain_graph("C", [ms(1)]), str(path))
        assert path.read_text().startswith("digraph")
