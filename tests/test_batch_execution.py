"""In-process batched sweep execution: byte-identity for any batch size.

The ``batch_size`` knob is pure wall-clock tuning — one worker
submission (or queue lease) covers ``k`` cells sharing one
:class:`~repro.backends.batch.CellBatchRunner` — and must never change a
record.  This suite pins that:

* every backend (inline / process-pool / work-stealing) produces records
  byte-identical to the serial ``batch_size=1`` reference for any ``k``
  (including ``k`` > number of cells, and hypothesis-drawn ``k``);
* the per-cell callbacks still fire per cell, in order, under chunking;
* ``batch_size`` resolution and validation (Session, CellBatch, CLI
  plumbing) reject nonsense and default to 1;
* the work-stealing manifest carries the coordinator's ``batch_size``
  down to external workers, and ``claim_many`` leases whole chunks.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.artifacts.store import ArtifactStore
from repro.backends import (
    BACKEND_NAMES,
    CellBatchRunner,
    CellQueue,
    InlineBackend,
    ProcessPoolBackend,
    WorkStealingBackend,
    resolve_batch_size,
    run_worker,
)
from repro.backends.base import CellBatch
from repro.core.policy_spec import local_lfd_spec, lru_spec
from repro.exceptions import ExperimentError
from repro.session import Session, SessionHooks
from repro.workloads.compiled import CompiledWorkload
from repro.workloads.scenarios import quick_workload

RU_SUBSET = (4, 6)
SPECS = [lru_spec(), local_lfd_spec(1, skip_events=True)]


@pytest.fixture(scope="module")
def workload():
    return quick_workload(length=20)


def _record_blobs(records):
    return [json.dumps(dataclasses.asdict(r), sort_keys=True) for r in records]


@pytest.fixture(scope="module")
def serial_baseline(workload):
    """batch_size=1, parallel=1, inline: the reference byte stream."""
    sweep = Session(workload=workload).sweep(SPECS, ru_counts=RU_SUBSET)
    return _record_blobs(sweep.records)


def _make_backend(name, tmp_path):
    if name == "inline":
        return InlineBackend()
    if name == "process-pool":
        return ProcessPoolBackend(workers=2)
    assert name == "work-stealing"
    return WorkStealingBackend(
        ArtifactStore(tmp_path / "ws-store"),
        workers=2,
        lease_ttl=30.0,
        poll_s=0.02,
        timeout_s=300,
    )


# ----------------------------------------------------------------------
# Byte-identity across backends and batch sizes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKEND_NAMES)
@pytest.mark.parametrize("batch_size", [2, 3, 64])
def test_batched_records_byte_identical(
    name, batch_size, tmp_path, workload, serial_baseline
):
    with _make_backend(name, tmp_path) as backend:
        sweep = Session(workload=workload, backend=backend).sweep(
            SPECS, ru_counts=RU_SUBSET, parallel=2, batch_size=batch_size
        )
    assert _record_blobs(sweep.records) == serial_baseline


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(batch_size=st.integers(min_value=1, max_value=16))
def test_property_pool_batch_size_is_behaviour_free(
    batch_size, workload, serial_baseline
):
    """Hypothesis: any k against the reusable pool backend."""
    with ProcessPoolBackend(workers=2) as backend:
        sweep = Session(workload=workload, backend=backend).sweep(
            SPECS, ru_counts=RU_SUBSET, parallel=2, batch_size=batch_size
        )
    assert _record_blobs(sweep.records) == serial_baseline


def test_session_default_batch_size_applies(workload, serial_baseline):
    """A Session-level batch_size is the sweep default; per-call overrides."""
    session = Session(workload=workload, backend=ProcessPoolBackend(workers=2),
                      batch_size=3)
    assert session.batch_size == 3
    sweep = session.sweep(SPECS, ru_counts=RU_SUBSET, parallel=2)
    assert _record_blobs(sweep.records) == serial_baseline
    override = session.sweep(SPECS, ru_counts=RU_SUBSET, parallel=2, batch_size=1)
    assert _record_blobs(override.records) == serial_baseline


class _CallbackLog(SessionHooks):
    def __init__(self):
        self.started = []
        self.finished = []
        self.progress = []

    def on_run_start(self, cell):
        self.started.append(cell.label)

    def on_run_end(self, cell, record):
        self.finished.append((cell.label, record.policy_label))

    def on_sweep_progress(self, done, total):
        self.progress.append((done, total))


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_callbacks_fire_per_cell_under_chunking(name, tmp_path, workload):
    hooks = _CallbackLog()
    with _make_backend(name, tmp_path) as backend:
        sweep = Session(workload=workload, backend=backend, hooks=(hooks,)).sweep(
            SPECS, ru_counts=RU_SUBSET, parallel=2, batch_size=3
        )
    n = len(sweep.records)
    assert len(hooks.started) == n
    assert len(hooks.finished) == n
    assert [done for done, _ in hooks.progress] == list(range(1, n + 1))
    assert all(total == n for _, total in hooks.progress)


# ----------------------------------------------------------------------
# Resolution and validation
# ----------------------------------------------------------------------
def test_resolve_batch_size():
    assert resolve_batch_size(None) == 1
    assert resolve_batch_size(None, default=4) == 4
    assert resolve_batch_size(7, default=4) == 7
    with pytest.raises(ExperimentError):
        resolve_batch_size(0)
    with pytest.raises(ExperimentError):
        resolve_batch_size(-3)


def test_cell_batch_rejects_bad_batch_size(workload):
    compiled = CompiledWorkload.compile(workload.apps)
    with pytest.raises(ValueError):
        CellBatch(
            workload=workload,
            content_key="k",
            compiled=compiled,
            cells=[],
            artifacts=[],
            batch_size=0,
        )


def test_session_rejects_bad_batch_size(workload):
    with pytest.raises(ExperimentError):
        Session(workload=workload, batch_size=0)
    session = Session(workload=workload)
    with pytest.raises(ExperimentError):
        session.sweep(SPECS, ru_counts=(4,), batch_size=-1)


# ----------------------------------------------------------------------
# CellBatchRunner: the shared warm context
# ----------------------------------------------------------------------
def test_runner_reuses_compiled_and_cache(workload):
    runner = CellBatchRunner(workload.apps)
    session = Session(workload=workload)
    cells = session._sweep_cells(SPECS, RU_SUBSET)
    artifacts = session._execute_plan(
        __import__("repro.backends.plan", fromlist=["build_plan"]).build_plan(cells)
    )
    seen = []
    records = runner.run_chunk(
        cells, artifacts, "full", on_record=lambda i, r: seen.append(i)
    )
    assert seen == list(range(len(cells)))
    reference = session.sweep(SPECS, ru_counts=RU_SUBSET).records
    assert _record_blobs(records) == _record_blobs(reference)


# ----------------------------------------------------------------------
# Warm-session record reuse
# ----------------------------------------------------------------------
class _CountingBackend(InlineBackend):
    """Inline execution that counts what the session actually submits."""

    def __init__(self):
        self.batches = 0
        self.cells_run = 0

    def run_cells(self, batch):
        self.batches += 1
        self.cells_run += len(batch.cells)
        return super().run_cells(batch)


def test_warm_sweep_served_from_record_memo(workload, serial_baseline):
    backend = _CountingBackend()
    session = Session(workload=workload, backend=backend)
    first = session.sweep(SPECS, ru_counts=RU_SUBSET)
    warm = session.sweep(SPECS, ru_counts=RU_SUBSET)
    assert backend.batches == 1  # second sweep never reached the backend
    assert backend.cells_run == len(first.records)
    assert session.cache.record_stats.hits == len(first.records)
    assert _record_blobs(warm.records) == serial_baseline


def test_partial_overlap_only_runs_new_cells(workload):
    backend = _CountingBackend()
    session = Session(workload=workload, backend=backend)
    session.sweep(SPECS, ru_counts=(4,))
    grown = session.sweep(SPECS, ru_counts=(4, 6))
    # Only the n_rus=6 cells were new; the 4-RU records came from memory.
    assert backend.cells_run == 2 * len(SPECS)
    baseline = Session(workload=workload).sweep(SPECS, ru_counts=(4, 6))
    assert _record_blobs(grown.records) == _record_blobs(baseline.records)


def test_record_reuse_off_re_executes(workload):
    backend = _CountingBackend()
    session = Session(workload=workload, backend=backend, record_reuse=False)
    for _ in range(2):
        session.sweep(SPECS, ru_counts=RU_SUBSET)
    assert backend.cells_run == 2 * len(SPECS) * len(RU_SUBSET)


def test_forget_records_forces_resimulation(workload):
    backend = _CountingBackend()
    session = Session(workload=workload, backend=backend)
    session.sweep(SPECS, ru_counts=RU_SUBSET)
    session.forget_records()
    session.sweep(SPECS, ru_counts=RU_SUBSET)
    assert backend.cells_run == 2 * len(SPECS) * len(RU_SUBSET)


def test_hooks_fire_per_cell_on_reused_records(workload):
    hooks = _CallbackLog()
    session = Session(workload=workload, hooks=(hooks,))
    n = len(session.sweep(SPECS, ru_counts=RU_SUBSET).records)
    hooks.started.clear(), hooks.finished.clear(), hooks.progress.clear()
    session.sweep(SPECS, ru_counts=RU_SUBSET)  # fully memoized
    assert len(hooks.started) == len(hooks.finished) == n
    assert hooks.progress == [(i, n) for i in range(1, n + 1)]


def test_hook_trace_sinks_bypass_record_memo(workload):
    """A hook that wants the event stream forces re-execution."""
    from repro.sim.tracing import TraceSink

    class _Counter(TraceSink):
        def __init__(self):
            self.events = 0

        def on_event(self, event):
            self.events += 1

    class _SinkHooks(SessionHooks):
        def __init__(self):
            self.sinks = []

        def trace_sinks(self, cell):
            sink = _Counter()
            self.sinks.append(sink)
            return (sink,)

    observer = _SinkHooks()
    session = Session(workload=workload, hooks=(observer,))
    session.sweep(SPECS, ru_counts=RU_SUBSET)
    observer.sinks.clear()
    session.sweep(SPECS, ru_counts=RU_SUBSET)
    assert observer.sinks  # cells re-ran for the sinks on the warm sweep
    assert all(s.events > 0 for s in observer.sinks)


# ----------------------------------------------------------------------
# Work-stealing plumbing: manifest batch_size, chunked leases
# ----------------------------------------------------------------------
def test_manifest_carries_batch_size(workload, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    captured = {}

    def grab(queue):
        captured["meta"] = queue.meta()

    backend = WorkStealingBackend(
        store, workers=1, poll_s=0.02, timeout_s=300, on_published=grab
    )
    with backend:
        Session(workload=workload, backend=backend).sweep(
            [lru_spec()], ru_counts=(4,), batch_size=5
        )
    assert captured["meta"]["batch_size"] == 5


def test_old_manifest_without_batch_size_defaults_to_one(workload, tmp_path):
    """Workers tolerate pre-batching manifests (missing key -> 1)."""
    from repro.backends.worker import _SweepContext
    from repro.backends.queue import workload_to_payload

    store = ArtifactStore(tmp_path / "store")
    queue = CellQueue(store, "sweep-x", n_cells=0)
    meta = {"n_cells": 0, "workload": workload_to_payload(workload)}
    ctx = _SweepContext(store, queue, meta)
    assert ctx.batch_size == 1
    ctx_bad = _SweepContext(
        store, queue, dict(meta, batch_size="nonsense")
    )
    assert ctx_bad.batch_size == 1


def test_claim_many_leases_whole_chunks(workload, tmp_path):
    store = ArtifactStore(tmp_path / "store")
    published = {}

    def hold(queue):
        published["queue"] = queue
        # Lease a whole chunk before any worker runs: all three cells
        # leave the claimable pool in one scan.
        tasks = queue.claim_many("probe", ttl_s=60.0, limit=3,
                                 rng=random.Random(0))
        published["leased"] = sorted(t["index"] for t in tasks)
        assert queue.claim_many("late", ttl_s=60.0, limit=3,
                                rng=random.Random(1)) == []
        # Release so the sweep can finish.
        for t in tasks:
            queue.store.remove("lease", queue.cell_key(t["index"]))

    backend = WorkStealingBackend(
        store, workers=1, poll_s=0.02, timeout_s=300, on_published=hold
    )
    with backend:
        sweep = Session(workload=workload, backend=backend).sweep(
            [lru_spec()], ru_counts=(4, 5, 6), batch_size=3
        )
    assert published["leased"] == [0, 1, 2]
    assert len(sweep.records) == 3


def test_external_worker_honours_manifest_batch_size(workload, tmp_path):
    """run_worker with batch_size=None chunks by the published manifest."""
    store = ArtifactStore(tmp_path / "store")
    session = Session(workload=workload)
    cells = session._sweep_cells([lru_spec()], (4, 5))
    from repro.backends.plan import build_plan
    from repro.backends.queue import pack_obj
    from repro.backends.stealing import sweep_queue_id

    artifacts = session._execute_plan(build_plan(cells))
    tasks = [
        {
            "index": i,
            "spec_b64": pack_obj(cell.spec),
            "n_rus": cell.n_rus,
            "reconfig_latency": cell.reconfig_latency,
            "device_b64": None,
            "mobility": mobility,
            "ideal_us": ideal,
            "trace": "full",
        }
        for i, (cell, (mobility, ideal)) in enumerate(zip(cells, artifacts))
    ]
    sweep_id = sweep_queue_id("content", len(tasks), nonce="t")
    queue = CellQueue(store, sweep_id, n_cells=len(tasks))
    queue.publish(session.workload, tasks, "full", batch_size=2)
    stats = run_worker(store, sweep_id, worker_id="w0", once=True, seed=0)
    assert stats == {"completed": 2, "failed": 0, "sweeps": 1}
    assert queue.finished()
