"""Legacy setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
builds (which require ``bdist_wheel``) fail; this shim enables
``pip install -e . --no-use-pep517``.  All metadata — including the
``repro``/``repro-experiments`` console scripts — lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
