"""Engine throughput — simulator events/second (supporting bench).

Not a paper artifact, but the quantity that makes the 500-application
evaluation tractable; regressions here make every figure slower to
regenerate.  Also benchmarks the design-time phase per graph.
"""

from repro.core.mobility import MobilityCalculator
from repro.core.policies.lfd import LocalLFDPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.graphs.multimedia import benchmark_suite
from repro.sim.semantics import ManagerSemantics
from repro.sim.simulator import simulate
from repro.workloads.scenarios import paper_evaluation_workload


def test_simulate_100_apps(benchmark):
    workload = paper_evaluation_workload(length=100)
    apps = list(workload.apps)

    def run():
        return simulate(
            apps,
            4,
            workload.reconfig_latency,
            PolicyAdvisor(LocalLFDPolicy()),
            ManagerSemantics(lookahead_apps=1),
        )

    result = benchmark(run)
    assert result.trace.n_executions == workload.n_tasks


def test_mobility_tables_for_suite(benchmark):
    calc = MobilityCalculator(n_rus=4, reconfig_latency=4000)
    tables = benchmark(calc.compute_tables, benchmark_suite())
    assert set(tables) == {"JPEG", "MPEG1", "HOUGH"}
