"""Engine throughput — simulator events/second and sweep wall-clock.

Not a paper artifact, but the quantity that makes the 500-application
evaluation tractable; regressions here make every figure slower to
regenerate.  This bench is also the **perf-regression gate**: it writes
``benchmarks/results/bench_engine_throughput.json``, which CI compares
against the committed baseline ``BENCH_engine.json`` at the repo root
(``benchmarks/check_engine_regression.py``, >20 % slowdown fails).

Cases (PR-5 acceptance set):

* ``paper_eval_100_full`` — the classic 100-app full-trace run through
  :class:`Session` (the original bench case);
* ``huge_stream_1000_window`` / ``huge_stream_5000_window`` — the
  window-limited hot path at streaming scale, aggregate trace;
* ``oracle_1000`` / ``oracle_2000`` — the clairvoyant-LFD path that used
  to rescan the whole remaining sequence per decision (quadratic); the
  recorded ``oracle_scaling_ratio`` (events/s at 2000 apps over 1000)
  must stay near 1.0 now that the oracle view is a lazy slice;
* ``sweep64_cold_s`` / ``sweep64_warm_s`` — a 64-cell
  ``Session.sweep(parallel=4, batch_size=16)``, run twice on one
  session: the second sweep is the full warm-session path — the record
  memo serves every already-finished cell (deterministic sim, see
  ``Session(record_reuse=...)``) over a kept-warm executor;
* ``sweep64_warm_exec_s`` — the warm *re-execution* path: records
  forgotten first (``Session.forget_records``), so every cell
  re-simulates on the warm executor with chunked (``batch_size=16``)
  submissions amortising per-cell IPC/pickle overhead;
* ``sweep64_warm_unbatched_s`` — the same forced re-execution at
  ``batch_size=1`` (the pre-batching submission granularity), so the
  chunking win is visible in the results;
* ``sweep64_sim_s`` — the 64 cells back-to-back on one warm in-process
  :class:`~repro.backends.batch.CellBatchRunner`: pure simulation time,
  zero dispatch.  ``sweep64_setup_overhead_s`` is the per-sweep setup +
  dispatch overhead the warm re-execution path adds on top of perfectly
  parallelised pure sim (``warm_exec − sim/parallel``), also reported
  per cell as ``sweep64_setup_overhead_ms_per_cell``;
* ``mobility_tables_s`` — the design-time phase for the paper catalog.

A machine-speed calibration loop (``calibration_ops_per_s``) is recorded
alongside so the regression gate can compare runs from different
machines on a common scale.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.device import Device
from repro.core.mobility import MobilityCalculator
from repro.core.policy_spec import lfd_spec, local_lfd_spec, lru_spec
from repro.graphs.multimedia import benchmark_suite
from repro.session import Session
from repro.sim.simulator import run_simulation
from repro.workloads.compiled import CompiledWorkload
from repro.workloads.scenarios import make_scenario, paper_evaluation_workload

RESULTS_PATH = Path(__file__).parent / "results" / "bench_engine_throughput.json"

#: What the pre-compiled-engine ``main`` measured on the baseline-recording
#: machine (commit eb0667d, same cases, same machine as the committed
#: BENCH_engine.json): the speedup factors in the results JSON are
#: computed against these, scaled by the calibration ratio so they stay
#: meaningful on other machines.
MAIN_BASELINE = {
    "calibration_ops_per_s": 9.26e6,
    "huge_stream_5000_window_events_per_s": 47338.0,
    "oracle_2000_events_per_s": 4503.0,
    "sweep64_s": 1.678,
}

#: Engine cases repeat this many times; the best run is recorded
#: (standard practice for throughput numbers on shared machines).
REPEATS = 3

#: 64 sweep cells: 8 specs x 8 RU counts.
SWEEP_SPECS = [
    lru_spec(),
    local_lfd_spec(1),
    local_lfd_spec(2),
    local_lfd_spec(3),
    local_lfd_spec(4),
    local_lfd_spec(1, skip_events=True),
    local_lfd_spec(2, skip_events=True),
    lfd_spec(),
]
SWEEP_RUS = (4, 5, 6, 7, 8, 9, 10, 11)
SWEEP_PARALLEL = 4
SWEEP_LENGTH = 120
#: Cells per worker submission for the headline sweep cases: 64 cells
#: over 4 workers in 4 chunks (one pickle round-trip per 16 cells).
SWEEP_BATCH = 16


def calibrate(n: int = 200_000) -> float:
    """Machine-speed reference: ops/second of a fixed pure-Python loop."""
    t0 = time.perf_counter()
    acc = 0
    d = {}
    for i in range(n):
        d[i & 1023] = i
        acc += d[i & 1023]
    elapsed = time.perf_counter() - t0
    assert acc  # keep the loop observable
    return n / elapsed


def _engine_run(workload, spec, trace, compiled):
    best = None
    events = 0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run_simulation(
            workload.apps,
            n_rus=workload.n_rus,
            reconfig_latency=workload.reconfig_latency,
            advisor=spec.make_advisor(),
            semantics=spec.make_semantics(),
            ideal_makespan_us=0,  # this bench measures the engine, not metrics
            trace=trace,
            compiled=compiled,
        )
        wall = time.perf_counter() - t0
        assert result.trace.n_executions == workload.n_tasks
        events = result.trace.n_executions + result.trace.n_reconfigurations
        best = wall if best is None or wall < best else best
    return {
        "wall_s": round(best, 4),
        "events": events,
        "events_per_s": round(events / best, 1),
    }


def test_engine_throughput_suite():
    cases = {}

    # Classic case: 100 apps, full trace, through the Session engine
    # (best of REPEATS like every engine case; the first run also pays
    # the design-time phase, later ones hit the session cache).
    workload = paper_evaluation_workload(length=100)
    session = Session(Device(4, workload.reconfig_latency), workload)
    best = None
    events = 0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = session.run(local_lfd_spec(1))
        wall = time.perf_counter() - t0
        assert result.trace.n_executions == workload.n_tasks
        events = result.trace.n_executions + len(result.trace.reconfigs)
        best = wall if best is None or wall < best else best
    cases["paper_eval_100_full"] = {
        "wall_s": round(best, 4),
        "events": events,
        "events_per_s": round(events / best, 1),
    }

    # Streaming scale, window-limited policy (the compiled hot path).
    for length in (1000, 5000):
        w = make_scenario("huge-stream", length=length)
        compiled = CompiledWorkload.compile(w.apps)
        cases[f"huge_stream_{length}_window"] = _engine_run(
            w, local_lfd_spec(1), "aggregate", compiled
        )

    # Oracle (whole-remaining-sequence) policy: the formerly quadratic path.
    for length in (1000, 2000):
        w = make_scenario("huge-stream", length=length)
        compiled = CompiledWorkload.compile(w.apps)
        cases[f"oracle_{length}"] = _engine_run(w, lfd_spec(), "aggregate", compiled)
    ratio = (
        cases["oracle_2000"]["events_per_s"] / cases["oracle_1000"]["events_per_s"]
    )
    cases["oracle_scaling_ratio"] = round(ratio, 3)
    # Quadratic scaling would halve events/s when the length doubles
    # (the pre-compiled engine measured 0.53); the lazy oracle view must
    # keep throughput roughly flat.
    assert ratio > 0.7, f"oracle path scales superlinearly again (ratio {ratio:.2f})"

    # 64-cell parallel sweep, twice on one session: the second sweep is
    # the full warm-session path (record memo + kept-warm executor);
    # the headline cases run batched (SWEEP_BATCH cells per submission).
    sweep_workload = make_scenario("quick", length=SWEEP_LENGTH)
    with Session(workload=sweep_workload) as sweep_session:
        t0 = time.perf_counter()
        cold = sweep_session.sweep(
            SWEEP_SPECS, ru_counts=SWEEP_RUS, parallel=SWEEP_PARALLEL,
            trace="aggregate", batch_size=SWEEP_BATCH,
        )
        cases["sweep64_cold_s"] = round(time.perf_counter() - t0, 4)
        best_warm = None
        for _ in range(2):
            t0 = time.perf_counter()
            warm = sweep_session.sweep(
                SWEEP_SPECS, ru_counts=SWEEP_RUS, parallel=SWEEP_PARALLEL,
                trace="aggregate", batch_size=SWEEP_BATCH,
            )
            wall = time.perf_counter() - t0
            best_warm = wall if best_warm is None or wall < best_warm else best_warm
            assert cold.records == warm.records  # reuse changes nothing but time
        cases["sweep64_warm_s"] = round(best_warm, 4)
        assert len(cold.records) == len(SWEEP_SPECS) * len(SWEEP_RUS) == 64

        # Warm *re-execution*: forget the record memo so every cell
        # re-simulates on the warm executor with chunked submissions.
        best_exec = None
        for _ in range(2):
            sweep_session.forget_records()
            t0 = time.perf_counter()
            re_exec = sweep_session.sweep(
                SWEEP_SPECS, ru_counts=SWEEP_RUS, parallel=SWEEP_PARALLEL,
                trace="aggregate", batch_size=SWEEP_BATCH,
            )
            wall = time.perf_counter() - t0
            best_exec = wall if best_exec is None or wall < best_exec else best_exec
            assert re_exec.records == cold.records
        cases["sweep64_warm_exec_s"] = round(best_exec, 4)

        # The pre-batching granularity on the same warm executor, for
        # the amortisation win (byte-identity is pinned by the test
        # suite; here it guards the bench comparing like with like).
        sweep_session.forget_records()
        t0 = time.perf_counter()
        unbatched = sweep_session.sweep(
            SWEEP_SPECS, ru_counts=SWEEP_RUS, parallel=SWEEP_PARALLEL,
            trace="aggregate", batch_size=1,
        )
        cases["sweep64_warm_unbatched_s"] = round(time.perf_counter() - t0, 4)
        assert unbatched.records == cold.records

        # Pure simulation time: the same 64 cells back-to-back on one
        # warm in-process runner (no processes, no pickling), separating
        # per-cell setup/dispatch overhead from sim work.
        from repro.backends.batch import CellBatchRunner
        from repro.backends.plan import build_plan

        cells = sweep_session._sweep_cells(SWEEP_SPECS, SWEEP_RUS)
        artifacts = sweep_session._execute_plan(build_plan(cells))
        runner = CellBatchRunner(
            sweep_workload.apps, sweep_session.compiled(), sweep_session.cache
        )
        best_sim = None
        for _ in range(2):
            t0 = time.perf_counter()
            records = runner.run_chunk(cells, artifacts, "aggregate")
            wall = time.perf_counter() - t0
            best_sim = wall if best_sim is None or wall < best_sim else best_sim
        assert records == list(cold.records)
        cases["sweep64_sim_s"] = round(best_sim, 4)
        overhead = max(0.0, best_exec - best_sim / SWEEP_PARALLEL)
        cases["sweep64_setup_overhead_s"] = round(overhead, 4)
        cases["sweep64_setup_overhead_ms_per_cell"] = round(
            overhead * 1000.0 / len(cells), 3
        )

    # Design-time phase for the paper catalog (fresh calculator per
    # repeat so every run pays the real Fig. 6 search, best of REPEATS).
    best_mob = None
    for _ in range(REPEATS):
        calc = MobilityCalculator(n_rus=4, reconfig_latency=4000)
        t0 = time.perf_counter()
        tables = calc.compute_tables(benchmark_suite())
        wall = time.perf_counter() - t0
        best_mob = wall if best_mob is None or wall < best_mob else best_mob
        assert set(tables) == {"JPEG", "MPEG1", "HOUGH"}
    cases["mobility_tables_s"] = round(best_mob, 4)

    calibration = max(calibrate() for _ in range(REPEATS))
    # Speedups vs the pre-compiled engine on main, machine-scaled through
    # the calibration ratio (see MAIN_BASELINE).
    scale = calibration / MAIN_BASELINE["calibration_ops_per_s"]
    speedups = {
        "huge_stream_5000_window_x": round(
            cases["huge_stream_5000_window"]["events_per_s"]
            / (MAIN_BASELINE["huge_stream_5000_window_events_per_s"] * scale),
            2,
        ),
        "oracle_2000_x": round(
            cases["oracle_2000"]["events_per_s"]
            / (MAIN_BASELINE["oracle_2000_events_per_s"] * scale),
            2,
        ),
        "sweep64_x": round(
            (MAIN_BASELINE["sweep64_s"] / scale) / cases["sweep64_cold_s"], 2
        ),
        "sweep64_warm_x": round(
            (MAIN_BASELINE["sweep64_s"] / scale) / cases["sweep64_warm_s"], 2
        ),
    }
    # The machine-scaled speedups are *recorded*, not asserted: the
    # calibration loop tracks overall machine speed, not necessarily the
    # engine-to-calibration ratio of a different Python build, so a hard
    # floor here could flake (or mask) without a real engine change.
    # Regression detection is the explicit-tolerance job of
    # check_engine_regression.py against the committed baseline; the one
    # machine-independent invariant (oracle throughput flat in sequence
    # length) is asserted above.

    payload = {
        "benchmark": "engine_throughput",
        "calibration_ops_per_s": round(calibration, 1),
        "vs_main_baseline": speedups,
        "cases": cases,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
