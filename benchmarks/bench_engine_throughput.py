"""Engine throughput — simulator events/second (supporting bench).

Not a paper artifact, but the quantity that makes the 500-application
evaluation tractable; regressions here make every figure slower to
regenerate.  Also benchmarks the design-time phase per graph.
"""

from repro.core.device import Device
from repro.core.mobility import MobilityCalculator
from repro.core.policy_spec import local_lfd_spec
from repro.graphs.multimedia import benchmark_suite
from repro.session import Session
from repro.workloads.scenarios import paper_evaluation_workload


def test_simulate_100_apps(benchmark):
    workload = paper_evaluation_workload(length=100)
    session = Session(Device(4, workload.reconfig_latency), workload)
    spec = local_lfd_spec(1)

    result = benchmark(session.run, spec)
    assert result.trace.n_executions == workload.n_tasks


def test_mobility_tables_for_suite(benchmark):
    calc = MobilityCalculator(n_rus=4, reconfig_latency=4000)
    tables = benchmark(calc.compute_tables, benchmark_suite())
    assert set(tables) == {"JPEG", "MPEG1", "HOUGH"}
