"""E-FIG9C — remaining reconfiguration overhead (%) vs number of RUs.

Paper shape (500 apps): every policy's remaining overhead falls as RUs
grow; LFD reaches the lowest average (≈7.2 %); Local LFD(w)+Skip
averages land between LRU and LFD for w >= 2 at 5+ RUs.  The 4-RU cell is
structure-sensitive (see EXPERIMENTS.md): the paper sees skips *reduce*
overhead under extreme competition, our synthesized graphs see the
literal Fig. 8 rule trade overhead for reuse there.
"""

from benchmarks.conftest import EVAL_RU_COUNTS
from repro.experiments.fig9 import run_fig9c


def test_fig9c_remaining_overhead(benchmark, eval_workload):
    sweep = benchmark.pedantic(
        run_fig9c, args=(eval_workload, EVAL_RU_COUNTS), rounds=1, iterations=1
    )

    lfd = sweep.average("LFD", "remaining_overhead_pct")
    lru = sweep.average("LRU", "remaining_overhead_pct")
    assert lfd < lru  # the oracle hides the most overhead on average

    # Overheads fall with device size for every policy.
    for label in sweep.policies():
        series = sweep.series(label, "remaining_overhead_pct")
        assert series[-1] <= series[0]

    # At generous RU counts (the tail of the sweep), the skip variants sit
    # at or below LRU, approaching LFD (the paper's near-optimal claim).
    tail = EVAL_RU_COUNTS[-1]
    assert (
        sweep.cell("Local LFD (4) + Skip", tail).remaining_overhead_pct
        <= sweep.cell("LRU", tail).remaining_overhead_pct
    )

    print("\n" + sweep.render_table(
        "remaining_overhead_pct", "% remaining overhead (paper Fig. 9c)"
    ))
