"""X-HYB — hybrid design-time/run-time vs purely run-time replacement.

The paper's abstract: "we reduce the execution time of the replacement
technique by 10 times with respect to an equivalent purely run-time one."
We measure both implementations on identical decisions; the reproduction
target is speed-up >= 10x (ours is far larger because the Python decision
path is thinner than the paper's full PowerPC module).
"""

from repro.core.policies.lfd import LocalLFDPolicy
from repro.core.mobility import PurelyRuntimeMobilityAdvisor
from repro.core.replacement_module import PolicyAdvisor
from repro.experiments.hybrid_speedup import (
    _skip_exercising_context,
    run_hybrid_speedup,
)
from repro.experiments.motivational import fig3_task_graph_2
from repro.sim.simtime import ms


def test_hybrid_decision(benchmark):
    graph = fig3_task_graph_2()
    ctx = _skip_exercising_context(graph.name, graph.reconfiguration_order()[-1])
    advisor = PolicyAdvisor(LocalLFDPolicy(), skip_events=True)
    benchmark(advisor.decide, ctx)


def test_purely_runtime_decision(benchmark):
    graph = fig3_task_graph_2()
    ctx = _skip_exercising_context(graph.name, graph.reconfiguration_order()[-1])
    advisor = PurelyRuntimeMobilityAdvisor(
        policy=LocalLFDPolicy(),
        graphs_by_name={graph.name: graph},
        n_rus=4,
        reconfig_latency=ms(4),
    )
    benchmark(advisor.decide, ctx)


def test_hybrid_speedup_at_least_10x(benchmark):
    result = benchmark.pedantic(
        run_hybrid_speedup,
        kwargs={"calls_hybrid": 500, "calls_runtime": 10},
        rounds=1,
        iterations=1,
    )
    assert result.speedup >= 10.0
    print(f"\nhybrid speed-up: {result.speedup:.0f}x (paper claims ~10x); "
          f"design-time cost {result.design_time_ms:.2f} ms amortised once")
