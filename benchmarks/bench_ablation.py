"""X-ABL — design-choice ablations (window, semantics, skip rule, zoo).

Regenerates the four headline ablations on a reduced workload and asserts
their qualitative outcomes; pytest-benchmark records regeneration cost.
"""

from benchmarks.conftest import EVAL_LENGTH
from repro.experiments.ablation import (
    run_policy_zoo,
    run_semantics_ablation,
    run_skip_mode_ablation,
    run_window_sweep,
)
from repro.workloads.scenarios import paper_evaluation_workload


def _workload():
    return paper_evaluation_workload(length=min(EVAL_LENGTH, 100))


def test_ablation_window_sweep(benchmark):
    rows = benchmark.pedantic(
        run_window_sweep, args=(_workload(),), kwargs={"windows": (0, 1, 2, 4)},
        rounds=1, iterations=1,
    )
    by_label = {r.label: r.reuse_pct for r in rows}
    # Reuse is monotone (within noise) in the DL window and bounded by LFD.
    assert by_label["Local LFD (0)"] <= by_label["Local LFD (4)"] + 1e-9
    assert by_label["Local LFD (4)"] <= by_label["LFD (oracle)"] + 1e-9
    print("\nA1 window sweep:", by_label)


def test_ablation_semantics(benchmark):
    rows = benchmark.pedantic(
        run_semantics_ablation, args=(_workload(),), rounds=1, iterations=1
    )
    assert len(rows) == 3
    print("\nA2 semantics:", {r.label: r.overhead_ms for r in rows})


def test_ablation_skip_modes(benchmark):
    rows = benchmark.pedantic(
        run_skip_mode_ablation, args=(_workload(),), rounds=1, iterations=1
    )
    by_label = {r.label: r for r in rows}
    # Both skip rules add reuse over plain ASAP; prospect never skips more
    # than literal (its condition is strictly stronger).
    assert by_label["skip mode: literal"].reuse_pct >= by_label["no skips (ASAP)"].reuse_pct
    assert by_label["skip mode: prospect"].n_skips <= by_label["skip mode: literal"].n_skips
    print("\nA3 skip rules:", {r.label: (r.reuse_pct, r.overhead_ms, r.n_skips) for r in rows})


def test_ablation_policy_zoo(benchmark):
    rows = benchmark.pedantic(
        run_policy_zoo, args=(_workload(),), rounds=1, iterations=1
    )
    by_label = {r.label: r.reuse_pct for r in rows}
    assert by_label["LFD"] == max(by_label.values())
    assert by_label["Local LFD (1)"] >= by_label["LRU"]
    print("\nA4 policy zoo:", by_label)
