"""E-STORE — cold vs warm design-time phase through the artifact store.

The acceptance claim of the persistent-store subsystem: a cold
``Session.sweep`` pays the full design-time phase (mobility tables +
zero-latency ideals) once, and a warm sweep over the *same store
directory but a fresh cache* — modelling a new process or CLI
invocation — skips every recomputation, serving the artifacts from the
disk tier.  Record-for-record identical results, measurably faster.

Two legs on skip-enabled specs (the mobility-hungry path):

* **cold** — empty store directory, every artifact computed + published;
* **warm** — fresh ``Session`` + fresh ``ArtifactCache`` over the same
  directory: 0 computations, all disk hits.

A third mini-leg cross-checks the fast bisect mobility engine against the
literal Fig. 6 linear scan on the same workload (byte-identical tables).

Measurements land in ``benchmarks/results/bench_artifact_store.json``
(uploaded as a CI artifact) so future PRs can track the trajectory.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.artifacts import ArtifactStore
from repro.core.mobility import MobilityCalculator
from repro.core.policy_spec import lfd_spec, local_lfd_spec, lru_spec
from repro.session import ArtifactCache, Session
from repro.workloads.scenarios import make_scenario

RESULTS_PATH = Path(__file__).parent / "results" / "bench_artifact_store.json"

#: RU axis for the sweep (kept small: the point is cold-vs-warm, not scale).
RU_COUNTS = (4, 5, 6)


def _specs():
    return [
        lru_spec(),
        local_lfd_spec(1, skip_events=True),
        local_lfd_spec(2, skip_events=True),
        lfd_spec(),
    ]


def _timed_sweep(workload, store_root):
    """One sweep with a *fresh* cache over ``store_root`` (new-process model)."""
    session = Session(workload=workload, store=ArtifactStore(store_root))
    t0 = time.perf_counter()
    sweep = session.sweep(_specs(), ru_counts=RU_COUNTS, title="bench")
    elapsed = time.perf_counter() - t0
    return sweep, elapsed, session.cache


def test_warm_store_skips_design_time_phase():
    workload = make_scenario("paper-eval", length=60)

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        cold_sweep, cold_s, cold_cache = _timed_sweep(workload, root)
        warm_sweep, warm_s, warm_cache = _timed_sweep(workload, root)

    # Correctness: the disk tier must not change a single cell.
    assert [r.__dict__ for r in cold_sweep.records] == [
        r.__dict__ for r in warm_sweep.records
    ]

    # Cold leg computed everything; warm leg computed *nothing*.
    assert cold_cache.mobility_stats.computations == len(RU_COUNTS)
    assert warm_cache.mobility_stats.computations == 0
    assert warm_cache.ideal_stats.computations == 0
    assert warm_cache.mobility_stats.disk_hits == len(RU_COUNTS)
    assert warm_cache.ideal_stats.disk_hits > 0

    # The warm run skips the design-time phase.  The computation-count
    # asserts above are the real acceptance check; the wall-clock
    # comparison is recorded in the JSON for trajectory tracking, with
    # only a loose bound asserted so a noisy CI runner cannot flake it.
    assert warm_s < cold_s * 1.5, (
        f"warm sweep ({warm_s:.2f}s) wildly slower than cold ({cold_s:.2f}s) "
        "despite serving all design-time artifacts from disk"
    )

    # Engine cross-check: bisect tables == literal Fig. 6 linear scan.
    graphs = workload.distinct_graphs()
    bisect_sims = {}
    linear_sims = {}
    for n_rus in RU_COUNTS:
        fast = MobilityCalculator(n_rus, workload.reconfig_latency, search="bisect")
        literal = MobilityCalculator(n_rus, workload.reconfig_latency, search="linear")
        assert fast.compute_tables(graphs) == literal.compute_tables(graphs)
        bisect_sims[n_rus] = fast.simulations
        linear_sims[n_rus] = literal.simulations

    payload = {
        "benchmark": "artifact_store_cold_warm",
        "workload": workload.name,
        "ru_counts": list(RU_COUNTS),
        "cells": len(cold_sweep.records),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "cold_cache": cold_cache.stats_summary(),
        "warm_cache": warm_cache.stats_summary(),
        "mobility_search": {
            "bisect_simulations": bisect_sims,
            "linear_simulations": linear_sims,
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print("\n" + json.dumps(payload, indent=2))
