"""E-TAB2 — impact of the replacement module on system performance.

The paper's Table II relations:

* the run-time replacement decision is a negligible fraction of each
  application's execution time;
* the design-time (mobility) phase is 1-3 orders of magnitude above the
  run-time decision, which is acceptable offline.
"""

from repro.experiments.table2 import run_table2


def test_table2_module_impact(benchmark):
    rows = benchmark.pedantic(
        run_table2, kwargs={"decision_calls": 500}, rounds=1, iterations=1
    )
    assert [r.app for r in rows] == ["JPEG", "MPEG1", "HOUGH"]
    for row in rows:
        # Initial execution times are the paper's (simulated) values.
        assert row.initial_exec_ms in (79.0, 37.0, 94.0)
        # Negligible-overhead claim (paper: 0.09-0.22 %).
        assert row.overhead_pct < 5.0
        # Design-time >> run-time claim (paper: 1-3 orders of magnitude).
        assert row.design_over_runtime > 10
    print("\nTable II (measured):")
    for row in rows:
        print(
            f"  {row.app:6s} initial={row.initial_exec_ms:g}ms "
            f"module={row.module_wall_ms:.5f}ms ({row.overhead_pct:.3f}%) "
            f"design={row.design_time_wall_ms:.2f}ms "
            f"({row.design_over_runtime:.0f}x run-time)"
        )
