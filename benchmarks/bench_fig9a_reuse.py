"""E-FIG9A — reuse rate vs number of RUs, ASAP loading.

Shape targets (paper, 500 apps): LRU avg ≈30.1 %, LFD avg ≈46.0 %
(optimal), Local LFD(1) close to LFD, Local LFD(4) ≈ LFD.  The bench runs
a reduced 150-app workload (see conftest) — the ordering and convergence
hold at any length; `repro-experiments fig9a` runs the full 500.
"""

from benchmarks.conftest import EVAL_RU_COUNTS
from repro.experiments.fig9 import run_fig9a


def test_fig9a_reuse_rates(benchmark, eval_workload):
    sweep = benchmark.pedantic(
        run_fig9a, args=(eval_workload, EVAL_RU_COUNTS), rounds=1, iterations=1
    )

    lru = sweep.average("LRU", "reuse_pct")
    local1 = sweep.average("Local LFD (1)", "reuse_pct")
    local2 = sweep.average("Local LFD (2)", "reuse_pct")
    local4 = sweep.average("Local LFD (4)", "reuse_pct")
    lfd = sweep.average("LFD", "reuse_pct")

    # Paper shape: LRU clearly worst; window monotone; LFD optimal;
    # Local LFD(4) within a point of LFD.
    assert lru < local1
    assert local1 <= local2 + 1e-9 <= local4 + 2e-9
    assert local4 <= lfd + 1e-9
    assert lfd - local4 < 1.0

    # Reuse grows with device size for every policy (paper Fig. 9a trend).
    for label in sweep.policies():
        series = sweep.series(label, "reuse_pct")
        assert series[-1] >= series[0]

    print("\n" + sweep.render_table("reuse_pct", "% reuse (paper Fig. 9a)"))
