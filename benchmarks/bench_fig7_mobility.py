"""M-FIG7 — regenerate the paper's Fig. 7 mobility-calculation example.

Asserts every schedule length of the worked example and the resulting
mobilities; benchmarks the design-time phase itself.
"""

from repro.experiments.motivational import run_fig7


def test_fig7_mobility_calculation(benchmark):
    result = benchmark(run_fig7)
    assert result.reference_makespan_ms == 30.0
    assert result.delay5_makespan_ms == 36.0
    assert result.delay6_makespan_ms == 32.0
    assert result.delay7_once_makespan_ms == 30.0
    assert result.delay7_twice_makespan_ms == 32.0
    assert dict(result.mobilities) == {4: 0, 5: 0, 6: 0, 7: 1}
    print("\nFig. 7 — reference 30 ms; delays 36/32/30/32 ms; "
          "mobilities {4:0, 5:0, 6:0, 7:1} (all == paper)")
