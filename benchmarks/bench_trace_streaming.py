"""E-STREAM — trace memory and throughput of the streaming event bus.

The acceptance claim of the event-bus refactor: ``trace="aggregate"``
runs a workload **10x the paper-eval app count** while retaining **O(1)
trace memory** — byte-for-byte the same sink footprint as a run 10x
shorter — where the classic ``trace="full"`` record lists grow linearly.

Three legs, all on the paper catalog:

* ``full`` @ 500 apps (the paper's §VI ceiling) — the linear baseline;
* ``aggregate`` @ 500 apps — same counters, constant memory;
* ``aggregate`` @ 5000 apps (the ``huge-stream`` scenario) — 10x scale,
  *identical* sink footprint to the 500-app aggregate leg.

Counter equality between full and aggregate is asserted cell-for-cell,
and the measurements land in
``benchmarks/results/bench_trace_streaming.json`` (uploaded as a CI
artifact) so future PRs can track the scaling trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.policy_spec import local_lfd_spec
from repro.sim.simulator import run_simulation
from repro.sim.tracing import trace_memory_bytes
from repro.workloads.scenarios import make_scenario

#: The paper's evaluation length — the "current ceiling" being multiplied.
BASE_APPS = 500

#: The streaming leg: >= 10x the ceiling (the acceptance criterion).
STREAM_APPS = 10 * BASE_APPS

RESULTS_PATH = Path(__file__).parent / "results" / "bench_trace_streaming.json"


def _measured_run(workload, trace_mode):
    spec = local_lfd_spec(1)
    t0 = time.perf_counter()
    # ideal_makespan_us=0 skips the zero-latency baseline sim: this bench
    # measures trace cost, not overhead metrics.
    result = run_simulation(
        workload.apps,
        n_rus=workload.n_rus,
        reconfig_latency=workload.reconfig_latency,
        advisor=spec.make_advisor(),
        semantics=spec.make_semantics(),
        ideal_makespan_us=0,
        trace=trace_mode,
    )
    elapsed = time.perf_counter() - t0
    return result, {
        "trace_mode": trace_mode,
        "n_apps": workload.n_apps,
        "executions": result.trace.n_executions,
        "trace_memory_bytes": trace_memory_bytes(result.trace),
        "wall_s": round(elapsed, 3),
        "apps_per_s": round(workload.n_apps / elapsed, 1),
    }


def test_aggregate_trace_is_o1_at_10x_scale():
    base = make_scenario("paper-eval", length=BASE_APPS)
    huge = make_scenario("huge-stream", length=STREAM_APPS)

    full_res, full_row = _measured_run(base, "full")
    agg_res, agg_row = _measured_run(base, "aggregate")
    stream_res, stream_row = _measured_run(huge, "aggregate")

    # Correctness: the aggregate sink reports the same numbers as the
    # record lists on the identical run.
    assert json.dumps(agg_res.trace.summary()) == json.dumps(full_res.trace.summary())

    # Scale: the streaming leg really is >= 10x the ceiling.
    assert stream_row["n_apps"] >= 10 * BASE_APPS
    assert stream_res.trace.n_executions > 10 * full_res.trace.n_executions * 0.9

    # O(1) memory: 10x the apps, identical sink footprint — and far below
    # the record lists of the 1x full-mode run.
    assert stream_row["trace_memory_bytes"] == agg_row["trace_memory_bytes"]
    assert stream_row["trace_memory_bytes"] * 20 < full_row["trace_memory_bytes"]

    payload = {
        "benchmark": "trace_streaming",
        "policy": "Local LFD (1)",
        "base_apps": BASE_APPS,
        "stream_apps": STREAM_APPS,
        "runs": [full_row, agg_row, stream_row],
        "full_over_aggregate_memory_x": round(
            full_row["trace_memory_bytes"] / agg_row["trace_memory_bytes"], 1
        ),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
