"""E-FIG9B — reuse rate with skip events: the "beats the optimum" result.

Paper shape (500 apps): Local LFD(1)+Skip avg ≈48.2 % vs LFD ≈44.4 % —
the skip feature plays by different rules (it may delay reconfigurations,
LFD may not) and overtakes the no-delay optimum.
"""

from benchmarks.conftest import EVAL_RU_COUNTS
from repro.experiments.fig9 import run_fig9b


def test_fig9b_skip_reuse(benchmark, eval_workload):
    sweep = benchmark.pedantic(
        run_fig9b, args=(eval_workload, EVAL_RU_COUNTS), rounds=1, iterations=1
    )

    skip = sweep.average("Local LFD (1) + Skip", "reuse_pct")
    plain = sweep.average("Local LFD (1)", "reuse_pct")
    lfd = sweep.average("LFD", "reuse_pct")
    lru = sweep.average("LRU", "reuse_pct")

    assert skip > plain        # skips strictly add reuse on this workload
    assert skip > lfd          # the paper's headline crossover
    assert lru < plain         # baseline sanity

    print("\n" + sweep.render_table("reuse_pct", "% reuse with skip events (paper Fig. 9b)"))
    print(f"crossover: Local LFD(1)+Skip avg {skip:.2f}% > LFD avg {lfd:.2f}% "
          f"(paper: 48.19% > 44.38%)")
