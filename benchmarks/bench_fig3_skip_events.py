"""M-FIG3 — regenerate the paper's Fig. 3 skip-event example.

Asserts the exact paper numbers: ASAP 0 % / 12 ms / 74 ms vs
Skip Events 10 % / 8 ms / 70 ms.
"""

from repro.experiments.motivational import run_fig3

PAPER = {
    "Local LFD ASAP": (0.0, 12.0, 74.0),
    "Local LFD + Skip Events": (10.0, 8.0, 70.0),
}


def test_fig3_skip_events(benchmark):
    rows = benchmark(run_fig3)
    measured = {r.label: (r.reuse_pct, r.overhead_ms, r.makespan_ms) for r in rows}
    assert measured == PAPER
    print("\nFig. 3 (reuse %, overhead ms, makespan ms) — measured == paper:")
    for label, cell in measured.items():
        print(f"  {label:25s} {cell}")
