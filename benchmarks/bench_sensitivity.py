"""X-SENS — seed robustness of the Fig. 9b crossover.

The paper evaluates one random sequence; this bench re-runs the skip-event
comparison across independent seeds and asserts the headline crossover
(Local LFD(1)+Skip > LFD in average reuse) is not an artifact of the draw.
"""

from repro.experiments.sensitivity import run_sensitivity


def test_crossover_across_seeds(benchmark):
    report = benchmark.pedantic(
        run_sensitivity,
        kwargs={"seeds": (1, 2, 3), "length": 60, "ru_counts": (4, 6, 8)},
        rounds=1,
        iterations=1,
    )
    by_label = report.by_label()
    assert report.crossover_rate == 1.0
    assert (
        by_label["Local LFD (1) + Skip"].mean_reuse_pct
        > by_label["LFD"].mean_reuse_pct
    )
    print(
        f"\ncrossover in {report.crossover_rate:.0%} of seeds; "
        f"Skip {by_label['Local LFD (1) + Skip'].mean_reuse_pct:.1f}% "
        f"vs LFD {by_label['LFD'].mean_reuse_pct:.1f}% "
        f"(std {by_label['Local LFD (1) + Skip'].std_reuse_pct:.1f})"
    )
