"""RESIL — what crash-safety costs and what it buys.

Three headline numbers for the checkpoint/resume subsystem, measured on
a reduced paper-evaluation workload:

* **checkpoint overhead** — wall-clock cost of running with periodic
  checkpoints (~5% of the run's events apart) vs. the same run bare;
* **checkpoint size** — bytes of one serialized checkpoint artifact
  (the versioned envelope incl. the base64 engine pickle);
* **recovery latency** — wall-clock from "crashed at ~60% of the run"
  to a completed, trace-identical result via resume, vs. re-running
  from scratch.

Correctness is asserted alongside the timing: the checkpointed, the
interrupted-and-resumed and the bare run all produce identical
summaries.  Measurements land in
``benchmarks/results/BENCH_resilience.json`` (uploaded by the CI
``chaos`` job) so future PRs can track the trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.artifacts.schema import decode_checkpoint
from repro.artifacts.store import ArtifactStore
from repro.core.policy_spec import named_policy_spec
from repro.resilience import run_checkpoint_key
from repro.sim.simulator import run_simulation
from repro.sim.tracing import TraceSink
from repro.workloads.scenarios import paper_evaluation_workload

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_resilience.json"

#: Reduced workload (paper: 500 applications) so CI stays interactive.
LENGTH = 80


class _CountSink(TraceSink):
    def __init__(self) -> None:
        self.n = 0

    def on_event(self, event) -> None:
        self.n += 1


class _Interrupt(RuntimeError):
    pass


class _BoomSink(TraceSink):
    armed = True

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)
        self.n = 0

    def on_event(self, event) -> None:
        self.n += 1
        if type(self).armed and self.n >= self.limit:
            raise _Interrupt(f"injected crash at trace event {self.n}")


def _simulate(workload, **kwargs):
    return run_simulation(
        workload.apps,
        n_rus=workload.n_rus,
        reconfig_latency=workload.reconfig_latency,
        advisor=named_policy_spec("lru").make_advisor(),
        trace="aggregate",
        **kwargs,
    )


def test_checkpoint_overhead_size_and_recovery(tmp_path):
    workload = paper_evaluation_workload(length=LENGTH)
    store = ArtifactStore(tmp_path / "ckpt")
    key = run_checkpoint_key("bench", "lru", workload.n_rus)

    # --- leg 1: bare run (and the event count that scales the others) --
    counter = _CountSink()
    t0 = time.perf_counter()
    bare = _simulate(workload, extra_sinks=[counter])
    bare_s = time.perf_counter() - t0
    n_events = counter.n
    assert n_events > 100, "workload too small to measure anything"

    every = max(1, n_events // 20)  # ~20 checkpoints per run
    boom_at = int(n_events * 0.6)

    # --- leg 2: checkpointed run, identical result ---------------------
    t0 = time.perf_counter()
    checked = _simulate(
        workload,
        checkpoint_every=every,
        checkpoint_store=store,
        checkpoint_key=key,
        extra_sinks=[_CountSink()],
    )
    checked_s = time.perf_counter() - t0
    assert checked.summary() == bare.summary()
    assert not store.exists("checkpoint", key)

    # --- leg 3: crash at ~60%, measure the surviving checkpoint --------
    _BoomSink.armed = True
    with pytest.raises(_Interrupt):
        _simulate(
            workload,
            checkpoint_every=every,
            checkpoint_store=store,
            checkpoint_key=key,
            extra_sinks=[_BoomSink(boom_at)],
        )
    payload = store.load("checkpoint", key, decode_checkpoint)
    assert payload is not None
    checkpoint_bytes = len(json.dumps(payload))

    # --- leg 4: recovery — resume to completion, trace-identical -------
    _BoomSink.armed = False
    try:
        t0 = time.perf_counter()
        resumed = _simulate(
            workload,
            checkpoint_every=every,
            checkpoint_store=store,
            checkpoint_key=key,
            extra_sinks=[_BoomSink(boom_at)],
        )
        recovery_s = time.perf_counter() - t0
    finally:
        _BoomSink.armed = True
    assert resumed.summary() == bare.summary()
    assert not store.exists("checkpoint", key)

    results = {
        "workload": {"scenario": "paper-eval", "length": LENGTH},
        "n_trace_events": n_events,
        "checkpoint_every_events": every,
        "bare_run_s": round(bare_s, 4),
        "checkpointed_run_s": round(checked_s, 4),
        "checkpoint_overhead_pct": round(100.0 * (checked_s - bare_s) / bare_s, 2),
        "per_checkpoint_cost_ms": round(
            1000.0 * (checked_s - bare_s) / max(1, n_events // every), 4
        ),
        "checkpoint_bytes": checkpoint_bytes,
        "crash_at_event": boom_at,
        "recovery_latency_s": round(recovery_s, 4),
        "recovery_vs_rerun_speedup": round(bare_s / recovery_s, 2)
        if recovery_s > 0
        else None,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print("\nRESIL:", json.dumps(results, indent=2))
