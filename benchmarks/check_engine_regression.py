"""Perf-regression gate: compare a fresh engine-throughput run to the
committed baseline and fail on >20 % slowdown.

Usage (what CI runs after ``bench_engine_throughput``)::

    python benchmarks/check_engine_regression.py \
        --baseline BENCH_engine.json \
        --fresh benchmarks/results/bench_engine_throughput.json \
        [--tolerance 0.20]

Both files are the JSON this repo's ``bench_engine_throughput`` writes.
Because the baseline was recorded on a different machine than the CI
runner, every comparison is scaled by the ratio of the two runs'
``calibration_ops_per_s`` (a fixed pure-Python loop measured at bench
time): a machine that is 2x slower overall is expected to be ~2x slower
on the engine too, and only a slowdown *beyond* the tolerance relative
to that expectation fails the gate.

Checked metrics:

* every ``events_per_s`` case — scaled throughput must not drop more
  than the tolerance;
* every ``*_s`` wall-clock case — scaled wall time must not grow more
  than the tolerance;
* ``oracle_scaling_ratio`` — an absolute floor (machine-independent):
  the oracle path must not turn quadratic again.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Machine-independent floor for the oracle anti-quadratic check.
ORACLE_RATIO_FLOOR = 0.7

#: Cases whose baseline measurement is shorter than this are reported
#: but not gated: single-digit-millisecond samples jitter far beyond
#: any reasonable tolerance on shared CI runners, so gating them would
#: only produce spurious failures.
MIN_GATE_SECONDS = 0.05


def check(baseline: dict, fresh: dict, tolerance: float) -> list:
    failures = []
    base_cal = float(baseline["calibration_ops_per_s"])
    fresh_cal = float(fresh["calibration_ops_per_s"])
    scale = fresh_cal / base_cal  # >1: this machine is faster than baseline's

    base_cases = baseline["cases"]
    fresh_cases = fresh["cases"]
    for name, base_value in sorted(base_cases.items()):
        if name not in fresh_cases:
            failures.append(f"{name}: missing from fresh results")
            continue
        fresh_value = fresh_cases[name]
        if name == "oracle_scaling_ratio":
            if fresh_value < ORACLE_RATIO_FLOOR:
                failures.append(
                    f"{name}: {fresh_value:.3f} < floor {ORACLE_RATIO_FLOOR} "
                    "(oracle path is scaling superlinearly again)"
                )
            continue
        if isinstance(base_value, dict) and "events_per_s" in base_value:
            if base_value.get("wall_s", 0.0) < MIN_GATE_SECONDS:
                continue  # too short to measure reliably; recorded only
            expected = base_value["events_per_s"] * scale
            measured = fresh_value["events_per_s"]
            if measured < expected * (1.0 - tolerance):
                failures.append(
                    f"{name}: {measured:.0f} events/s < "
                    f"{expected * (1.0 - tolerance):.0f} "
                    f"(baseline {base_value['events_per_s']:.0f} x machine "
                    f"scale {scale:.2f}, tolerance {tolerance:.0%})"
                )
        elif name.endswith("_s") and isinstance(base_value, (int, float)):
            if base_value < MIN_GATE_SECONDS:
                continue  # too short to measure reliably; recorded only
            expected = base_value / scale
            measured = float(fresh_value)
            if measured > expected * (1.0 + tolerance):
                failures.append(
                    f"{name}: {measured:.3f}s > {expected * (1.0 + tolerance):.3f}s "
                    f"(baseline {base_value:.3f}s / machine scale {scale:.2f}, "
                    f"tolerance {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)

    failures = check(baseline, fresh, args.tolerance)
    scale = fresh["calibration_ops_per_s"] / baseline["calibration_ops_per_s"]
    print(
        f"engine perf gate: machine scale {scale:.2f}x vs baseline, "
        f"tolerance {args.tolerance:.0%}"
    )
    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"OK: {len(baseline['cases'])} cases within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
