"""E-HETERO — device scaling: 1 vs 2 vs 4 reconfiguration controllers.

The device-model refactor promises that the single reconfiguration
circuitry — a hard structural assumption of the seed engine — is now just
``n_controllers=1``.  This benchmark runs the ``paper-eval`` and
``huge-stream`` workloads on 1/2/4-controller variants of the paper
device and records makespans and wall time, in two latency regimes:

* the paper's 4 ms loads, where executions are long enough to hide every
  load — extra controllers buy (and must measure) **zero** contention;
* 16 ms loads, where the single circuitry genuinely serializes work and
  parallel controllers claw back makespan.

Assertions pin the physics: adding controllers never *increases* the
makespan, the 1-controller device model reproduces the legacy scalar
path exactly, and the 4 ms regime shows no contention.  Measurements
land in ``benchmarks/results/bench_hetero_device.json`` (uploaded as a
CI artifact next to the streaming/store benchmarks), giving the perf
trajectory its first device-scaling data points.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.policy_spec import local_lfd_spec
from repro.hw.model import DeviceModel
from repro.sim.simulator import run_simulation
from repro.workloads.scenarios import make_scenario

CONTROLLER_COUNTS = (1, 2, 4)

#: (scenario, length, trace mode) legs; huge-stream streams through the
#: aggregate sink so the benchmark measures the engine, not trace memory.
WORKLOADS = (
    ("paper-eval", 500, "full"),
    ("huge-stream", 5000, "aggregate"),
)

#: µs per load: the paper regime (loads hide) and a contention regime.
LATENCY_REGIMES = (4000, 16000)

RESULTS_PATH = Path(__file__).parent / "results" / "bench_hetero_device.json"


def _run(workload, device, trace_mode):
    spec = local_lfd_spec(1)
    t0 = time.perf_counter()
    # ideal_makespan_us=0: this bench compares makespans across devices,
    # not overhead metrics, so the zero-latency baseline sim is skipped.
    result = run_simulation(
        workload.apps,
        advisor=spec.make_advisor(),
        semantics=spec.make_semantics(),
        ideal_makespan_us=0,
        trace=trace_mode,
        device=device,
    )
    elapsed = time.perf_counter() - t0
    return result, round(elapsed, 3)


def test_controller_scaling_never_hurts_and_lands_in_json():
    rows = []
    for scenario, length, trace_mode in WORKLOADS:
        workload = make_scenario(scenario, length=length)
        for latency in LATENCY_REGIMES:
            makespans = {}
            for n_controllers in CONTROLLER_COUNTS:
                device = DeviceModel.homogeneous(
                    workload.n_rus, latency, n_controllers=n_controllers
                )
                result, wall_s = _run(workload, device, trace_mode)
                makespans[n_controllers] = result.makespan_us
                rows.append(
                    {
                        "scenario": workload.name,
                        "n_apps": workload.n_apps,
                        "latency_us": latency,
                        "controllers": n_controllers,
                        "makespan_us": result.makespan_us,
                        "reuse_pct": round(100 * result.reuse_rate, 2),
                        "reconfigurations": result.trace.n_reconfigurations,
                        "wall_s": wall_s,
                    }
                )
            # Regression pin: for this (deterministic) policy/workload
            # pair, a larger controller pool starts loads earlier and the
            # makespan is non-increasing.  Not a universal law — adaptive
            # skip-event policies can react to earlier loads with worse
            # eviction choices (see ablation A7) — but it must hold here.
            assert makespans[1] >= makespans[2] >= makespans[4], makespans

            if latency == 4000:
                # Paper regime: executions (>= 6 ms) hide every 4 ms load,
                # so controller contention is exactly zero.
                assert makespans[1] == makespans[4], makespans
            # The 1-controller model must be byte-identical to the legacy
            # scalar path (the homogeneous fast-path guarantee).
            scalar_spec = local_lfd_spec(1)
            scalar = run_simulation(
                workload.apps,
                n_rus=workload.n_rus,
                reconfig_latency=latency,
                advisor=scalar_spec.make_advisor(),
                semantics=scalar_spec.make_semantics(),
                ideal_makespan_us=0,
                trace="aggregate",
            )
            assert scalar.makespan_us == makespans[1]

    contention = [
        r for r in rows if r["latency_us"] == 16000 and r["scenario"].startswith("paper")
    ]
    payload = {
        "benchmark": "hetero_device_controllers",
        "policy": "Local LFD (1)",
        "controller_counts": list(CONTROLLER_COUNTS),
        "latency_regimes_us": list(LATENCY_REGIMES),
        "runs": rows,
        "contention_recovered_pct_at_16ms": round(
            100.0
            * (contention[0]["makespan_us"] - contention[-1]["makespan_us"])
            / contention[0]["makespan_us"],
            2,
        ),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
