"""E-TAB1 — worst-case run-time of one replacement decision.

The paper's Table I relations, measured in Python:

* LRU is the cheapest;
* LFD is orders of magnitude above Local LFD (full-sequence scan);
* Local LFD grows mildly with the DL window.

pytest-benchmark times the *single-decision* callables directly, which is
exactly the quantity Table I reports.
"""

import pytest

from repro.core.policies.classic import LRUPolicy
from repro.core.policies.lfd import LFDPolicy, LocalLFDPolicy
from repro.core.replacement_module import PolicyAdvisor
from repro.experiments.table1 import _reference_strings, run_table1, worst_case_context


@pytest.fixture(scope="module")
def contexts():
    window1, full = _reference_strings(sequence_length=500, dl_window=1)
    window4, _ = _reference_strings(sequence_length=500, dl_window=4)
    return {
        "lru": worst_case_context(future_refs=(), oracle_refs=None),
        "lfd": worst_case_context(future_refs=(), oracle_refs=full),
        "local1": worst_case_context(future_refs=window1, oracle_refs=None),
        "local4": worst_case_context(future_refs=window4, oracle_refs=None),
    }


def test_decision_lru(benchmark, contexts):
    advisor = PolicyAdvisor(LRUPolicy())
    benchmark(advisor.decide, contexts["lru"])


def test_decision_lfd_full_scan(benchmark, contexts):
    advisor = PolicyAdvisor(LFDPolicy())
    benchmark(advisor.decide, contexts["lfd"])


def test_decision_local_lfd_window1(benchmark, contexts):
    advisor = PolicyAdvisor(LocalLFDPolicy(), skip_events=True)
    benchmark(advisor.decide, contexts["local1"])


def test_decision_local_lfd_window4(benchmark, contexts):
    advisor = PolicyAdvisor(LocalLFDPolicy(), skip_events=True)
    benchmark(advisor.decide, contexts["local4"])


def test_table1_relations(benchmark):
    rows = benchmark.pedantic(
        run_table1,
        kwargs={"sequence_length": 500, "calls": 500, "repeats": 1},
        rounds=1,
        iterations=1,
    )
    by_label = {r.label: r.mean_decision_us for r in rows}
    assert by_label["LRU"] == min(by_label.values())
    assert by_label["LFD"] == max(by_label.values())
    assert by_label["LFD"] / by_label["Local LFD (1) + Skip"] > 10
    assert by_label["Local LFD (4) + Skip"] >= by_label["Local LFD (1) + Skip"]
    print("\nTable I (us/decision):", {k: round(v, 2) for k, v in by_label.items()})
