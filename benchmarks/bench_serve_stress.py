"""SERVE-STRESS — the daemon under a thousand concurrent small jobs.

The acceptance claim of the ``repro serve`` subsystem: one daemon
process sustains ≥ 1000 concurrent small jobs from dozens of distinct
clients with **zero lost and zero duplicated results**, and — because
every job runs over the shared compile-once :class:`ArtifactCache` —
the steady-state cost per job is the simulation itself, not the
design-time phase (warm-cache hit rate ≈ 1 after the first job).

Shape of the stress: ``CLIENTS`` asyncio clients (each its own socket
and ``X-Repro-Client`` quota identity) burst-submit ``JOBS`` identical
small run jobs, then long-poll every job to completion.  Submissions
far outpace the worker pool, so the daemon's backlog genuinely holds
hundreds of queued jobs at once.  Per-job latency is taken from the
daemon's own submit/finish timestamps (one clock, no client skew).

Scaled by environment for CI:

* ``REPRO_STRESS_JOBS``    — total jobs (default 1000)
* ``REPRO_STRESS_CLIENTS`` — concurrent clients (default 50)
* ``REPRO_STRESS_WORKERS`` — daemon worker threads (default 4)

Measurements land in ``benchmarks/results/bench_serve_stress.json``
(uploaded as a CI artifact) so future PRs can track the trajectory.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import time
from pathlib import Path

from repro.client import AsyncReproClient
from repro.server import ServerThread

RESULTS_PATH = Path(__file__).parent / "results" / "bench_serve_stress.json"

JOBS = int(os.environ.get("REPRO_STRESS_JOBS", "1000"))
CLIENTS = int(os.environ.get("REPRO_STRESS_CLIENTS", "50"))
WORKERS = int(os.environ.get("REPRO_STRESS_WORKERS", "4"))

#: The small job every client submits: identical on purpose, so the
#: design-time artifacts are computed once and every later job measures
#: pure queue + simulation cost.
JOB_SPEC = {
    "kind": "run",
    "scenario": "quick",
    "scenario_kwargs": {"length": 10},
    "policy": "local-lfd",
}


async def _client_leg(host, port, index, n_jobs):
    """One client: burst-submit ``n_jobs``, then await each result."""
    outcomes = []
    async with AsyncReproClient(host, port, client_id=f"stress-{index}") as c:
        job_ids = [await c.submit(dict(JOB_SPEC)) for _ in range(n_jobs)]
        for job_id in job_ids:
            status = await c.wait(job_id, timeout=600)
            result = (
                await c.result(job_id) if status["state"] == "done" else None
            )
            outcomes.append((job_id, status, result))
    return outcomes


async def _stress(host, port):
    per_client = [JOBS // CLIENTS] * CLIENTS
    for i in range(JOBS % CLIENTS):
        per_client[i] += 1
    legs = await asyncio.gather(
        *(
            _client_leg(host, port, i, n)
            for i, n in enumerate(per_client)
            if n
        )
    )
    return [outcome for leg in legs for outcome in leg]


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def test_serve_sustains_concurrent_jobs_without_loss():
    with ServerThread(workers=WORKERS) as srv:
        wall_start = time.perf_counter()
        outcomes = asyncio.run(_stress(srv.host, srv.port))
        wall = time.perf_counter() - wall_start

        async def _health():
            async with AsyncReproClient(srv.host, srv.port) as c:
                return await c.healthz()

        health = asyncio.run(_health())

    # --- zero lost, zero duplicated -----------------------------------
    job_ids = [job_id for job_id, _, _ in outcomes]
    duplicated = len(job_ids) - len(set(job_ids))
    assert len(job_ids) == JOBS, f"lost {JOBS - len(job_ids)} submissions"
    assert duplicated == 0, f"{duplicated} duplicated job ids"
    states = [status["state"] for _, status, _ in outcomes]
    assert states.count("done") == JOBS, f"non-done states: {set(states)}"
    assert all(result is not None for _, _, result in outcomes)

    # Identical jobs must produce identical results (no cross-job bleed).
    makespans = {r["summary"]["makespan_us"] for _, _, r in outcomes}
    assert len(makespans) == 1, f"divergent results: {makespans}"
    assert health["jobs"]["done"] == JOBS

    # --- latency + throughput from the daemon's own clock -------------
    latencies = sorted(
        status["finished"] - status["submitted"] for _, status, _ in outcomes
    )
    first_submit = min(status["submitted"] for _, status, _ in outcomes)
    last_finish = max(status["finished"] for _, status, _ in outcomes)
    span = max(last_finish - first_submit, 1e-9)
    jobs_per_s = JOBS / span

    # --- warm-cache hit rate ------------------------------------------
    ideal = health["cache"]["ideal"]
    hits = ideal["memory_hits"] + ideal["disk_hits"]
    warm_rate = hits / max(1, hits + ideal["misses"])
    # Identical jobs: one cold miss, everything after served from cache.
    assert warm_rate >= 0.9, f"warm hit rate {warm_rate:.3f}"

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "bench": "serve_stress",
                "jobs": JOBS,
                "clients": CLIENTS,
                "workers": WORKERS,
                "lost": JOBS - len(job_ids),
                "duplicated": duplicated,
                "jobs_per_s": round(jobs_per_s, 2),
                "p50_latency_s": round(_percentile(latencies, 0.50), 4),
                "p99_latency_s": round(_percentile(latencies, 0.99), 4),
                "max_latency_s": round(latencies[-1], 4),
                "mean_latency_s": round(statistics.fmean(latencies), 4),
                "warm_hit_rate": round(warm_rate, 4),
                "wall_s": round(wall, 3),
            },
            indent=2,
        )
        + "\n"
    )

    # Sanity floor, not a race: even a laptop-class box clears this by
    # an order of magnitude once the cache is warm.
    assert jobs_per_s > 5, f"throughput collapsed: {jobs_per_s:.2f} jobs/s"
