"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (table or figure)
and asserts its *shape* (who wins, by roughly what factor) while
pytest-benchmark records the runtime cost of regenerating it.

The figure benches default to a reduced workload (EVAL_LENGTH applications
instead of the paper's 500, a subset of RU counts) so the whole suite
stays interactive; run the CLI (``repro-experiments fig9a``) for the
full-scale versions — the shapes are identical.
"""

from __future__ import annotations

import pytest

from repro.workloads.scenarios import paper_evaluation_workload

#: Workload length used by the figure benches (paper: 500).
EVAL_LENGTH = 150

#: RU sweep used by the figure benches (paper: 4..10).
EVAL_RU_COUNTS = (4, 6, 8, 10)


@pytest.fixture(scope="session")
def eval_workload():
    return paper_evaluation_workload(length=EVAL_LENGTH)
