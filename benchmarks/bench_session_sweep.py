"""E-SESSION — sequential vs parallel `Session.sweep` wall-clock.

Times the fig9a spec panel over the reduced evaluation workload twice —
``parallel=1`` and ``parallel=JOBS`` — asserts the results are identical
cell-for-cell, and writes the measurements as JSON
(``benchmarks/results/bench_session_sweep.json``) so future PRs can track
the scaling trajectory.  The speed-up assertion only applies on multi-core
runners; on a single core the parallel path still must be correct, just
not faster.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import EVAL_RU_COUNTS
from repro.core.policy_spec import fig9a_specs
from repro.session import Session

#: Worker processes for the parallel leg.
JOBS = min(4, os.cpu_count() or 1)

RESULTS_PATH = Path(__file__).parent / "results" / "bench_session_sweep.json"


def _timed_sweep(workload, parallel: int):
    session = Session(workload=workload)
    t0 = time.perf_counter()
    sweep = session.sweep(
        fig9a_specs(), ru_counts=EVAL_RU_COUNTS, title="bench", parallel=parallel
    )
    return sweep, time.perf_counter() - t0


def test_session_sweep_parallel_scaling(eval_workload):
    sequential, seq_s = _timed_sweep(eval_workload, parallel=1)
    parallel, par_s = _timed_sweep(eval_workload, parallel=JOBS)

    # Correctness first: parallelism must not change a single cell.
    assert [r.__dict__ for r in sequential.records] == [
        r.__dict__ for r in parallel.records
    ]

    payload = {
        "benchmark": "session_sweep_fig9a",
        "workload": eval_workload.name,
        "ru_counts": list(EVAL_RU_COUNTS),
        "cells": len(sequential.records),
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "sequential_s": round(seq_s, 3),
        "parallel_s": round(par_s, 3),
        "speedup": round(seq_s / par_s, 3) if par_s > 0 else None,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))

    if (os.cpu_count() or 1) >= 2 and JOBS >= 2:
        # Fork + fan-out overhead is real but must not eat the whole win.
        assert par_s < seq_s, (
            f"parallel={JOBS} ({par_s:.2f}s) not faster than sequential "
            f"({seq_s:.2f}s) on a {os.cpu_count()}-core runner"
        )
