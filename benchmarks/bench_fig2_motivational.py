"""M-FIG2 — regenerate the paper's Fig. 2 motivational comparison.

Asserts the exact paper numbers (they reproduce exactly under the
calibrated fixtures) and benchmarks the cost of the three simulations.
"""

import pytest

from repro.experiments.motivational import run_fig2

PAPER = {
    "LRU": (16.7, 22.0),
    "LFD": (41.7, 11.0),
    "Local LFD (1)": (41.7, 15.0),
}


def _check(rows):
    measured = {r.label: (r.reuse_pct, r.overhead_ms) for r in rows}
    assert measured == PAPER
    return measured


def test_fig2_motivational(benchmark):
    rows = benchmark(run_fig2)
    measured = _check(rows)
    print("\nFig. 2 (reuse %, overhead ms) — measured == paper:")
    for label, cell in measured.items():
        print(f"  {label:15s} {cell}")
