"""E-BACKENDS — cells/second across the three sweep execution backends.

Runs the fig9a spec panel over the reduced evaluation workload once per
backend — ``inline``, ``process-pool`` (2 workers) and ``work-stealing``
(2 workers over a throwaway store) — asserts every backend returns
cell-for-cell identical records, and writes the throughput comparison as
JSON (``benchmarks/results/bench_backends.json``) so the CI ``backends``
job can track the coordination overhead of the work-stealing queue
against the plain pool over time.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import EVAL_RU_COUNTS
from repro.artifacts.store import ArtifactStore
from repro.backends import ProcessPoolBackend, WorkStealingBackend
from repro.core.policy_spec import fig9a_specs
from repro.session import Session

#: Worker processes for the parallel backends.
JOBS = min(2, os.cpu_count() or 1)

RESULTS_PATH = Path(__file__).parent / "results" / "bench_backends.json"


def _timed_sweep(workload, backend):
    with Session(workload=workload, backend=backend) as session:
        session.compiled()  # pay workload compilation outside the clock
        t0 = time.perf_counter()
        sweep = session.sweep(
            fig9a_specs(), ru_counts=EVAL_RU_COUNTS, title="bench"
        )
    return sweep, time.perf_counter() - t0


def test_backend_throughput(eval_workload, tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("bench-backends-store"))
    legs = {
        "inline": None,  # Session default for parallel=1
        "process-pool": ProcessPoolBackend(workers=JOBS),
        "work-stealing": WorkStealingBackend(
            store, workers=JOBS, poll_s=0.02, timeout_s=600
        ),
    }
    sweeps, timings = {}, {}
    for name, backend in legs.items():
        sweeps[name], timings[name] = _timed_sweep(eval_workload, backend)

    # Correctness first: the backend must never change a cell.
    reference = [r.__dict__ for r in sweeps["inline"].records]
    for name, sweep in sweeps.items():
        assert [r.__dict__ for r in sweep.records] == reference, name

    n_cells = len(reference)
    payload = {
        "benchmark": "backend_throughput_fig9a",
        "workload": eval_workload.name,
        "ru_counts": list(EVAL_RU_COUNTS),
        "cells": n_cells,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "backends": {
            name: {
                "seconds": round(seconds, 3),
                "cells_per_s": round(n_cells / seconds, 3) if seconds else None,
            }
            for name, seconds in timings.items()
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))

    # The queue adds coordination cost but must stay within an order of
    # magnitude of the pool — a stall (lease thrash, republish loop)
    # shows up as a blown ratio long before a timeout would.
    assert timings["work-stealing"] < timings["process-pool"] * 10 + 5.0
